"""Elastic, fault-tolerant sharding of fleet job batches across hosts.

A fleet batch too large for one service process is split across logical
hosts by **structural-signature consistent hashing**: every job whose
pipeline is structurally identical lands on the same shard, so the
per-shard result caches dedup exactly as well as one global cache would
— no two shards ever optimize the same (pipeline, machine, spec) key.
Placement routes through a virtual-node :class:`~repro.service.ring.
HashRing` keyed by host id, so it is stable across processes, hosts,
and runs, *and* elastic: a host joining or leaving moves only ~K/N of K
signatures instead of rehashing the world (the modulo ``shard_index``
scheme this replaces remains as a legacy helper).

A shard is **anything** with ``optimize_fleet(jobs)`` + ``stats()``: an
in-process :class:`~repro.service.batch.BatchOptimizer`, or a
:class:`~repro.service.client.RemoteShard` bound to a daemon URL — the
latter turns :class:`ShardedOptimizer` into a multi-process, multi-host
front-end dispatching over HTTP. Shards are dispatched **concurrently**
(one thread per occupied shard) under a per-shard deadline, so fleet
wallclock is the slowest shard, not the sum — and a dead shard can no
longer hang the batch forever.

**Failover.** A shard that fails *retryably* — unreachable, timed out,
or saturated (:mod:`repro.service.errors`) — is dropped from the
batch's working ring and its jobs are re-homed to the surviving hosts,
up to ``max_redispatch`` rounds. The merged
:class:`~repro.service.batch.FleetOptimizationReport` then carries a
``degraded`` section naming the failed hosts, the re-homed jobs, and
the retry counts; a zero-fault batch carries none, byte-identically to
the pre-failover report. Non-retryable failures (a bad batch fails the
same way on every host) raise :class:`~repro.service.errors.
ShardDispatchError` carrying **every** shard's outcome — no secondary
failure is silently dropped.

**Membership.** Hosts whose readiness probes (``check_ready``, when the
shard offers one) fail ``quarantine_after`` consecutive times are
quarantined out of the routing ring; quarantined hosts are re-probed at
the start of each batch and re-admitted the moment they recover.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.fleet.analysis import merge_degraded_sections
from repro.graph.signature import structural_signature
from repro.obs import MetricsRegistry, merge_snapshots
from repro.service.batch import FleetOptimizationReport
from repro.service.errors import (
    ShardDispatchError,
    ShardFailure,
    ShardTimeout,
)
from repro.service.ring import DEFAULT_VNODES, HashRing, default_host_ids

__all__ = ["shard_index", "shard_fleet", "ShardedOptimizer"]


def shard_index(signature: str, num_shards: int) -> int:
    """Legacy modulo placement of a structural signature (hex digest).

    Kept for callers that need the historical fixed-``N`` layout;
    fleet routing goes through :class:`~repro.service.ring.HashRing`
    now, which preserves placement under membership churn.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return int(signature, 16) % num_shards


def _job_pipeline(entry) -> object:
    """The pipeline of one job in any of the batch-service input forms."""
    if isinstance(entry, tuple):
        if len(entry) < 2:
            raise ValueError(
                "job tuples are (name, pipeline[, ...]); "
                f"got {len(entry)} elements"
            )
        return entry[1]
    return entry.pipeline


def _job_name(entry) -> str:
    """The name of one job in any of the batch-service input forms."""
    if isinstance(entry, tuple):
        if len(entry) < 2:
            raise ValueError(
                "job tuples are (name, pipeline[, ...]); "
                f"got {len(entry)} elements"
            )
        return entry[0]
    return entry.name


def _signed_entries(
    jobs: Union[Mapping[str, object], Sequence],
) -> List[Tuple[object, str]]:
    """``(entry, structural signature)`` pairs in submission order.

    Mappings become ``(name, pipeline)`` tuples. Stamped fleets share
    Pipeline objects, so each distinct object is hashed once.
    """
    if isinstance(jobs, Mapping):
        entries: Sequence = list(jobs.items())
    else:
        entries = list(jobs)
    sig_by_id: Dict[int, str] = {}
    signed = []
    for entry in entries:
        pipeline = _job_pipeline(entry)
        sig = sig_by_id.get(id(pipeline))
        if sig is None:
            sig = structural_signature(pipeline)
            sig_by_id[id(pipeline)] = sig
        signed.append((entry, sig))
    return signed


def shard_fleet(
    jobs: Union[Mapping[str, object], Sequence],
    num_shards: int,
    vnodes: int = DEFAULT_VNODES,
) -> List[List]:
    """Partition a job batch into ``num_shards`` signature-affine shards.

    Accepts the same input forms as
    :meth:`~repro.service.batch.BatchOptimizer.optimize_fleet`
    (``{name: pipeline}`` mappings, job tuples, or objects with a
    ``pipeline`` attribute). Placement routes through a consistent-hash
    ring over :func:`~repro.service.ring.default_host_ids`, so shard
    ``i`` holds exactly what host ``shard-i`` of an equally-sized
    :class:`ShardedOptimizer` would receive — deterministic across
    processes. Relative job order is preserved within each shard;
    mappings shard as ``(name, pipeline)`` tuples. Empty shards are
    returned as empty lists so shard ``i`` always maps to logical host
    ``i``.
    """
    hosts = default_host_ids(num_shards)
    shards: List[List] = [[] for _ in range(num_shards)]
    if num_shards == 1:
        if isinstance(jobs, Mapping):
            shards[0].extend(jobs.items())
        else:
            shards[0].extend(jobs)
        return shards
    ring = HashRing(hosts, vnodes=vnodes)
    index = {host: i for i, host in enumerate(hosts)}
    for entry, sig in _signed_entries(jobs):
        shards[index[ring.host_for(sig)]].append(entry)
    return shards


class ShardedOptimizer:
    """Dispatch job batches concurrently across per-shard optimizers,
    surviving shard failures by re-homing work through the ring.

    Each shard is one logical host: anything exposing
    ``optimize_fleet(jobs) -> FleetOptimizationReport`` and
    ``stats() -> dict`` — an in-process
    :class:`~repro.service.batch.BatchOptimizer` (point each at a
    different ``DiskStore`` directory to model independent hosts) or a
    :class:`~repro.service.client.RemoteShard` talking HTTP to a daemon
    process. A batch is routed over the host ring, every occupied shard
    is dispatched on its own thread under ``shard_timeout``, retryable
    failures are re-dispatched to survivors, and the per-shard reports
    are merged into one fleet-wide :class:`FleetOptimizationReport`
    with deduplicated cache arithmetic. Job order in the merged report
    matches submission order.

    Parameters
    ----------
    optimizers:
        The shard hosts, positionally identified as ``shard-0`` … by
        default (stable ring ids across processes).
    hosts:
        Explicit host ids, one per optimizer (e.g. daemon URLs). Ids
        are the ring keys: keep them stable across runs or placement —
        and therefore per-host cache locality — changes.
    vnodes:
        Virtual nodes per host on the ring.
    shard_timeout:
        Per-dispatch deadline in seconds for **all** shards of one
        round (``None`` = wait forever, the legacy behaviour). A shard
        that misses it is abandoned, counted as a
        :class:`~repro.service.errors.ShardTimeout`, and its jobs
        re-homed.
    max_redispatch:
        How many re-homing rounds one batch may use before giving up
        with :class:`~repro.service.errors.ShardDispatchError`.
    quarantine_after:
        Consecutive probe/dispatch failures after which a host is
        quarantined out of the routing ring. Quarantined hosts are
        re-probed at the start of every batch (and by :meth:`probe`)
        and re-admitted on recovery.
    probe_timeout:
        Per-probe timeout passed to shards exposing
        ``check_ready(timeout=...)`` — much shorter than a request
        timeout, so a dead host costs milliseconds, not 30 s.
    monotonic:
        Injectable monotonic clock for the dispatch-deadline arithmetic
        (and this instance's metric timers), matching the ``clock=`` /
        ``monotonic=`` convention of the client and daemon. Note the
        deadline *wait* itself (``future.result(timeout=...)``) still
        runs on real time — a fake clock jumped past the deadline makes
        the remaining budget 0 and times the shard out immediately,
        which is exactly what deadline tests need.
    """

    def __init__(
        self,
        optimizers: Sequence,
        *,
        hosts: Optional[Sequence[str]] = None,
        vnodes: int = DEFAULT_VNODES,
        shard_timeout: Optional[float] = 900.0,
        max_redispatch: int = 2,
        quarantine_after: int = 3,
        probe_timeout: float = 2.0,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        if not optimizers:
            raise ValueError("need at least one shard optimizer")
        for opt in optimizers:
            if not callable(getattr(opt, "optimize_fleet", None)) or \
                    not callable(getattr(opt, "stats", None)):
                raise TypeError(
                    f"shard {opt!r} does not satisfy the shard contract "
                    "(optimize_fleet + stats); pass BatchOptimizer or "
                    "RemoteShard instances"
                )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.optimizers = tuple(optimizers)
        if hosts is None:
            hosts = default_host_ids(len(optimizers))
        hosts = tuple(hosts)
        if len(hosts) != len(optimizers):
            raise ValueError(
                f"{len(hosts)} host ids for {len(optimizers)} optimizers"
            )
        if len(set(hosts)) != len(hosts):
            raise ValueError("host ids must be unique")
        self.hosts = hosts
        self.shard_timeout = shard_timeout
        self.max_redispatch = max_redispatch
        self.quarantine_after = quarantine_after
        self.probe_timeout = probe_timeout
        self._by_host: Dict[str, object] = dict(zip(hosts, optimizers))
        self._ring = HashRing(hosts, vnodes=vnodes)
        self._failures: Dict[str, int] = {h: 0 for h in hosts}
        self._quarantined: set = set()
        self._membership_lock = threading.Lock()
        self._monotonic = monotonic
        #: front-end-owned instruments (dispatch latency, failover
        #: counters); ``stats()`` merges these with every reachable
        #: shard's own snapshot
        self.metrics = MetricsRegistry(clock=monotonic)

    @property
    def num_shards(self) -> int:
        return len(self.optimizers)

    @property
    def ring(self) -> HashRing:
        """The live routing ring (quarantined hosts excluded)."""
        return self._ring

    @property
    def quarantined(self) -> Tuple[str, ...]:
        with self._membership_lock:
            return tuple(sorted(self._quarantined))

    # -- health-probe-driven membership --------------------------------
    def _probe_host(self, host: str,
                    timeout: Optional[float] = None) -> bool:
        """One readiness probe; shards without ``check_ready`` fall
        back to ``stats()`` (reachable == healthy)."""
        opt = self._by_host[host]
        timeout = timeout if timeout is not None else self.probe_timeout
        probe = getattr(opt, "check_ready", None)
        try:
            if callable(probe):
                probe(timeout=timeout)
            else:
                opt.stats()
            return True
        except Exception:  # noqa: BLE001 - any probe fault = unhealthy
            return False

    def _note_success(self, host: str) -> None:
        readmitted = False
        with self._membership_lock:
            self._failures[host] = 0
            if host in self._quarantined:
                self._quarantined.discard(host)
                if host not in self._ring:
                    self._ring.add(host)
                readmitted = True
        if readmitted:
            self.metrics.counter(
                "repro_shard_readmissions_total",
                "Quarantined hosts re-admitted after a healthy probe",
            ).labels(host=host).inc()

    def _note_failure(self, host: str) -> None:
        quarantined = False
        with self._membership_lock:
            self._failures[host] += 1
            if self._failures[host] >= self.quarantine_after and \
                    host not in self._quarantined:
                self._quarantined.add(host)
                if host in self._ring:
                    self._ring.remove(host)
                quarantined = True
        if quarantined:
            self.metrics.counter(
                "repro_shard_quarantines_total",
                "Hosts quarantined out of the routing ring",
            ).labels(host=host).inc()

    def probe(self, timeout: Optional[float] = None) -> Dict[str, bool]:
        """Probe every host's readiness and update membership.

        Healthy answers reset the host's failure streak (re-admitting
        it if quarantined); failures extend the streak and quarantine
        the host at ``quarantine_after``. Returns ``{host: healthy}``.
        """
        results = {}
        for host in self.hosts:
            ok = self._probe_host(host, timeout)
            (self._note_success if ok else self._note_failure)(host)
            results[host] = ok
        return results

    def _readmit_recovered(self) -> None:
        """Re-probe quarantined hosts; recovered ones rejoin the ring."""
        with self._membership_lock:
            quarantined = sorted(self._quarantined)
        for host in quarantined:
            if self._probe_host(host):
                self._note_success(host)

    # -- dispatch -------------------------------------------------------
    @staticmethod
    def _assign(
        signed: Sequence[Tuple[object, str]], ring: HashRing
    ) -> Dict[str, List[Tuple[object, str]]]:
        assignment: Dict[str, List[Tuple[object, str]]] = {}
        for entry, sig in signed:
            assignment.setdefault(ring.host_for(sig), []).append(
                (entry, sig))
        return assignment

    def _dispatch_round(
        self, pending: Dict[str, List[Tuple[object, str]]]
    ) -> Dict[str, object]:
        """Run one round concurrently; collect **every** shard's
        outcome (report or exception) under the dispatch deadline."""
        # One dispatcher thread per occupied shard: remote shards spend
        # their time blocked on HTTP, in-process shards on their own
        # pools, so fleet wallclock is the slowest shard, not the sum.
        pool = ThreadPoolExecutor(
            max_workers=len(pending),
            thread_name_prefix="repro-shard-dispatch",
        )
        futures = {
            host: pool.submit(
                self._by_host[host].optimize_fleet,
                [entry for entry, _sig in batch],
            )
            for host, batch in pending.items()
        }
        clock = self._monotonic
        started = clock()
        deadline = (None if self.shard_timeout is None
                    else started + self.shard_timeout)
        dispatch_seconds = self.metrics.histogram(
            "repro_shard_dispatch_seconds",
            "Dispatch-to-outcome wallclock per shard round, by host",
        )
        outcomes: Dict[str, object] = {}
        for host, future in futures.items():
            try:
                remaining = (None if deadline is None
                             else max(0.0, deadline - clock()))
                outcomes[host] = future.result(timeout=remaining)
            except FuturesTimeout:
                future.cancel()
                outcomes[host] = ShardTimeout(
                    host,
                    f"no report within the {self.shard_timeout}s "
                    "dispatch deadline",
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                outcomes[host] = exc
            dispatch_seconds.labels(host=host).observe(clock() - started)
        # Never block on abandoned (timed-out) dispatcher threads.
        pool.shutdown(wait=False, cancel_futures=True)
        return outcomes

    def optimize_fleet(
        self,
        jobs: Union[Mapping[str, object], Sequence],
    ) -> FleetOptimizationReport:
        """Route, optimize, fail over, and merge one batch."""
        # Reject duplicate names up front: duplicates whose pipelines
        # hash to *different* shards would slip past the per-shard
        # check, silently diverging from BatchOptimizer on the same
        # input (and making the merged report's job() ambiguous).
        if isinstance(jobs, Mapping):
            order = {name: i for i, name in enumerate(jobs)}
        else:
            order = {}
            for i, entry in enumerate(jobs):
                name = _job_name(entry)
                if name in order:
                    raise ValueError(f"duplicate job name {name!r}")
                order[name] = i
        self._readmit_recovered()
        with self._membership_lock:
            ring = self._ring.copy()
        if not len(ring):
            raise ShardDispatchError(
                "no healthy shard hosts (all "
                f"{self.num_shards} quarantined)"
            )
        signed = _signed_entries(jobs)
        pending = self._assign(signed, ring)

        reports: List[FleetOptimizationReport] = []
        failed_shards: List[dict] = []
        rehomed: Dict[str, dict] = {}
        shard_errors: Dict[str, BaseException] = {}
        rounds = 0
        while pending:
            outcomes = self._dispatch_round(pending)
            retry: List[Tuple[object, str]] = []
            fatal: Dict[str, BaseException] = {}
            for host, batch in pending.items():
                outcome = outcomes[host]
                if isinstance(outcome, FleetOptimizationReport):
                    reports.append(outcome)
                    self._note_success(host)
                    for name in rehomed:
                        if rehomed[name].get("to") == host:
                            rehomed[name]["completed"] = True
                    continue
                exc = outcome
                shard_errors[host] = exc
                names = [_job_name(entry) for entry, _sig in batch]
                self.metrics.counter(
                    "repro_shard_failures_total",
                    "Shard dispatch failures, by host and failure kind",
                ).labels(host=host, kind=type(exc).__name__).inc()
                if isinstance(exc, ShardFailure) and exc.retryable:
                    self._note_failure(host)
                    if host in ring:
                        ring.remove(host)
                    failed_shards.append({
                        "host": host,
                        "kind": type(exc).__name__,
                        "error": str(exc),
                        "retryable": True,
                        "jobs": names,
                    })
                    for name in names:
                        record = rehomed.setdefault(
                            name, {"from": host, "attempts": 0})
                        record["attempts"] += 1
                    self.metrics.counter(
                        "repro_shard_rehomed_jobs_total",
                        "Jobs re-homed off a failed shard",
                    ).inc(len(names))
                    retry.extend(batch)
                else:
                    fatal[host] = exc
            if fatal:
                raise ShardDispatchError(
                    f"{len(shard_errors)} shard(s) failed during fleet "
                    "dispatch",
                    failures=shard_errors,
                )
            if not retry:
                break
            rounds += 1
            if rounds > self.max_redispatch:
                raise ShardDispatchError(
                    f"re-dispatch budget exhausted after "
                    f"{self.max_redispatch} round(s); "
                    f"{len(retry)} job(s) still unplaced",
                    failures=shard_errors,
                )
            if not len(ring):
                raise ShardDispatchError(
                    "no surviving hosts to re-home "
                    f"{len(retry)} job(s) onto",
                    failures=shard_errors,
                )
            pending = self._assign(retry, ring)
            for host, batch in pending.items():
                for entry, _sig in batch:
                    rehomed[_job_name(entry)]["to"] = host

        if rounds:
            self.metrics.counter(
                "repro_shard_redispatch_rounds_total",
                "Extra dispatch rounds spent re-homing failed batches",
            ).inc(rounds)
        merged = FleetOptimizationReport.merge(reports)
        # Restore submission order (merge concatenates shard by shard).
        merged.jobs.sort(key=lambda j: order[j.name])
        if failed_shards:
            merged.degraded = merge_degraded_sections([
                merged.degraded,
                {
                    "failed_shards": failed_shards,
                    "rehomed_jobs": rehomed,
                    "redispatch_rounds": rounds,
                },
            ])
        return merged

    def stats(self) -> dict:
        """Per-shard and fleet-wide cumulative cache accounting.

        An unreachable shard no longer fails the fleet-wide view: its
        entry carries ``{"error": ...}`` and the aggregates cover the
        reachable shards only.
        """
        shard_stats: List[dict] = []
        unreachable: List[str] = []
        for host in self.hosts:
            try:
                entry = dict(self._by_host[host].stats())
            except Exception as exc:  # noqa: BLE001 - report, don't raise
                entry = {"error": f"{type(exc).__name__}: {exc}"}
                unreachable.append(host)
            entry["host"] = host
            shard_stats.append(entry)
        reachable = [s for s in shard_stats if "error" not in s]
        hits = sum(s["cache_hits"] for s in reachable)
        misses = sum(s["cache_misses"] for s in reachable)
        total = hits + misses
        # Merge per-shard metric snapshots (histograms bucket-wise) with
        # the router's own registry into one fleet-wide snapshot.
        snapshots = [self.metrics.as_dict()]
        snapshots.extend(
            s["metrics"] for s in reachable
            if isinstance(s.get("metrics"), dict)
        )
        return {
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / total if total else 0.0,
            "store_entries": sum(s["store_entries"] for s in reachable),
            "shards": shard_stats,
            "unreachable_shards": unreachable,
            "quarantined_shards": list(self.quarantined),
            "metrics": merge_snapshots(snapshots),
        }
