"""Typed failure taxonomy for the service client and shard fabric.

Mirrors the streamcorpus-pipeline idiom of naming failure classes by
*what the caller should do next* (``GracefulShutdown`` vs
``FailedExtraction``; give up vs retry): every shard-level failure is
either **retryable somewhere else** — the host is gone, stalled, or
saturated, and the ring can re-home its jobs to survivors — or a
**give-up** — the batch itself is bad (deterministic failure), and
re-dispatching it to another host would only fail the same way again.

The shard classes are raised out of :class:`~repro.service.client.
RemoteShard` (which maps transport-level :class:`ClientError`\\ s onto
them) and consumed by :class:`~repro.service.shard.ShardedOptimizer`'s
failover loop; any *other* exception escaping a shard is treated as
give-up — a bug should surface, not be papered over by re-dispatch.

``ClientError``/``ClientTimeout`` live here (rather than in
:mod:`repro.service.client`) so the shard taxonomy can subclass
``ClientError`` without an import cycle; :mod:`repro.service.client`
re-exports both, so existing ``except ClientError`` call sites are
unaffected.
"""

from __future__ import annotations

from typing import Mapping, Optional

__all__ = [
    "ClientError",
    "ClientTimeout",
    "ShardFailure",
    "ShardUnreachable",
    "ShardTimeout",
    "ShardSaturated",
    "ShardDispatchError",
]


class ClientError(Exception):
    """A daemon interaction that failed (HTTP error, timeout, transport).

    ``status`` carries the HTTP status code when the daemon answered
    with one (``None`` for transport failures and client-side
    timeouts).
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ClientTimeout(ClientError):
    """A client-side deadline expired: a socket read/connect blew its
    (per-call) timeout, or :meth:`~repro.service.client.
    OptimizationClient.wait` gave up polling. ``status`` is ``None`` —
    the daemon never answered within the budget."""


class ShardFailure(ClientError):
    """One shard host failed to run its slice of a fleet batch.

    ``retryable`` is the class-level verdict: ``True`` means the jobs
    can be re-homed to surviving hosts via the ring; ``False`` means
    re-dispatch would deterministically fail again, so the failure must
    surface to the caller.
    """

    retryable = False

    def __init__(self, host: str, message: str) -> None:
        super().__init__(f"shard {host!r}: {message}")
        self.host = host
        self.reason = message


class ShardUnreachable(ShardFailure):
    """The host is gone: connection refused/reset, socket died mid-
    response, readiness probe failed, or the daemon answered that it is
    draining. Retryable — the ring re-homes its jobs."""

    retryable = True


class ShardTimeout(ShardFailure):
    """The host accepted work but blew its dispatch deadline (stalled
    daemon, wedged pool, black-holed network). Retryable — the stalled
    attempt is abandoned and its jobs re-homed."""

    retryable = True


class ShardSaturated(ShardFailure):
    """The host kept answering 429 past the client's retry budget.
    Retryable — surviving hosts absorb the load instead."""

    retryable = True


class ShardDispatchError(RuntimeError):
    """A fleet dispatch that could not be completed.

    Raised when a shard fails non-retryably, when re-dispatch rounds
    are exhausted, or when no healthy hosts remain. Unlike the bare
    first-exception propagation it replaces, this carries **every**
    shard's failure (``failures``: host id → exception), so one noisy
    host can no longer mask what happened to the others.
    """

    def __init__(
        self,
        message: str,
        failures: Optional[Mapping[str, BaseException]] = None,
    ) -> None:
        self.failures = dict(failures or {})
        if self.failures:
            detail = "; ".join(
                f"{host}: {type(exc).__name__}: {exc}"
                for host, exc in sorted(self.failures.items())
            )
            message = f"{message} [{detail}]"
        super().__init__(message)
