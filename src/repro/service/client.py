"""HTTP client library for the optimization daemon.

:class:`OptimizationClient` wraps the daemon's endpoints
(:mod:`repro.service.daemon`) behind the same in-process surface the
rest of the service exposes: submit a fleet of *serialized programs*,
poll with backoff, and get a real
:class:`~repro.service.batch.FleetOptimizationReport` back — every
``GET /report/<id>`` job is rehydrated through
:func:`repro.graph.serialize.pipeline_from_dict`, so remote results are
valid programs exactly like local ones (§4.1: all results are
programs). Saturation answers (``429`` + ``Retry-After``) are honored
transparently by :meth:`~OptimizationClient.submit`.

:class:`RemoteShard` binds one client to one daemon URL and exposes the
shard contract (``optimize_fleet`` + ``stats``), so a
:class:`~repro.service.shard.ShardedOptimizer` front-end can fan a
fleet out to N daemon *processes* — on one host or many — over HTTP
instead of N in-process optimizers, turning signature-affine sharding
into a real multi-host protocol.

Everything here is stdlib ``http.client``; the wire format is the
daemon's JSON (serialized pipelines, ``Machine.to_dict`` machines,
``OptimizeSpec.to_dict`` specs). Each client keeps **one persistent
HTTP/1.1 connection** to its daemon — submit/poll/report loops reuse
the same socket instead of paying a TCP handshake per request (see
``BENCH_service_http_overhead``). A request that fails on a *reused*
connection is retried once on a fresh one (stale keep-alive sockets are
normal); a failure on a fresh connection means the daemon is
unreachable and raises. ``sleep``/``clock`` are injectable so
retry/backoff behaviour is testable without wall-clock waits.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import threading
import time
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from repro.core.spec import OptimizeSpec
from repro.obs import MetricsRegistry
from repro.graph.serialize import (
    pipeline_from_dict,
    pipeline_to_dict,
    pipeline_to_json,
)
from repro.service.batch import FleetOptimizationReport, JobResult
from repro.service.errors import (  # ClientError re-exported: historical home
    ClientError,
    ClientTimeout,
    ShardFailure,
    ShardSaturated,
    ShardTimeout,
    ShardUnreachable,
)

__all__ = [
    "BatchFailedError",
    "ClientError",
    "ClientTimeout",
    "OptimizationClient",
    "RemoteShard",
    "fleet_to_body",
    "report_from_dict",
]


class BatchFailedError(ClientError):
    """A submitted batch finished with ``status: failed``."""


# ----------------------------------------------------------------------
# Wire format: BatchOptimizer job forms -> POST /optimize body.
# ----------------------------------------------------------------------
def _wire_job(name, pipeline, machine=None, spec=None) -> dict:
    job = {"name": name, "pipeline": pipeline_to_dict(pipeline)}
    if machine is not None:
        job["machine"] = machine.to_dict()
    if spec is not None:
        job["spec"] = spec.to_dict()
    return job


def fleet_to_body(
    jobs: Union[Mapping[str, object], Sequence],
    spec: Optional[OptimizeSpec] = None,
) -> dict:
    """Serialize a job batch into a ``POST /optimize`` body.

    Accepts the same input forms as
    :meth:`~repro.service.batch.BatchOptimizer.optimize_fleet`:
    ``{name: pipeline}`` mappings, ``(name, pipeline[, machine])``
    tuples, or objects with ``name``/``pipeline`` (and optionally
    ``machine``/``spec``/``granularity``/``backend``) attributes. The
    deprecated loose ``granularity``/``backend`` knobs are folded into
    the job's spec (or the batch ``spec``) so they survive the wire;
    with no spec to fold onto they are rejected — the daemon only
    speaks :class:`OptimizeSpec`.
    """
    if isinstance(jobs, Mapping):
        entries: Sequence = [(name, pipe) for name, pipe in jobs.items()]
    else:
        entries = list(jobs)
    wire = []
    for entry in entries:
        if isinstance(entry, tuple):
            if not 2 <= len(entry) <= 3:
                raise ValueError(
                    "job tuples are (name, pipeline[, machine]) on the "
                    f"wire; got {len(entry)} elements — carry "
                    "granularity/backend in an OptimizeSpec instead"
                )
            name, pipeline, *rest = entry
            machine = rest[0] if rest else None
            job_spec = None
            loose: Dict[str, object] = {}
        else:
            name = entry.name
            pipeline = entry.pipeline
            machine = getattr(entry, "machine", None)
            job_spec = getattr(entry, "spec", None)
            loose = {
                "granularity": getattr(entry, "granularity", None),
                "backend": getattr(entry, "backend", None),
            }
        if any(v is not None for v in loose.values()):
            base = job_spec if job_spec is not None else spec
            if base is None:
                raise ValueError(
                    f"job {name!r} carries loose granularity/backend "
                    "overrides but no OptimizeSpec to fold them into; "
                    "give the job (or the batch) a spec"
                )
            job_spec = base.with_overrides(**loose)
        wire.append(_wire_job(name, pipeline, machine, job_spec))
    body: dict = {"jobs": wire}
    if spec is not None:
        body["spec"] = spec.to_dict()
    return body


# ----------------------------------------------------------------------
# Report rehydration: GET /report/<id> JSON -> real report objects.
# ----------------------------------------------------------------------
def _rehydrate_float(value) -> float:
    """Undo the daemon's JSON-safe float mapping (non-finite -> null)."""
    return float(value) if value is not None else math.nan


def report_from_dict(data: dict) -> FleetOptimizationReport:
    """Rebuild a :class:`FleetOptimizationReport` from report JSON.

    Each job's embedded program is rebuilt with
    :func:`pipeline_from_dict` (validating it is a real program) and
    re-serialized canonically, so a rehydrated
    :attr:`JobResult.pipeline_json` is byte-identical to the one a
    local :class:`~repro.service.batch.BatchOptimizer` run would carry.
    """
    jobs = []
    for j in data["jobs"]:
        pipeline = pipeline_from_dict(j["pipeline"])
        jobs.append(
            JobResult(
                name=j["name"],
                signature=j["signature"],
                cache_hit=bool(j["cache_hit"]),
                baseline_throughput=_rehydrate_float(
                    j["baseline_throughput"]),
                optimized_throughput=_rehydrate_float(
                    j["optimized_throughput"]),
                predicted_throughput=_rehydrate_float(
                    j["predicted_throughput"]),
                bottleneck=j["bottleneck"],
                decisions=tuple(j["decisions"]),
                pipeline_json=pipeline_to_json(pipeline),
                cache_key=j.get("cache_key", ""),
                provenance=j.get("provenance"),
            )
        )
    return FleetOptimizationReport(
        jobs=jobs,
        cache_hits=data["cache_hits"],
        cache_misses=data["cache_misses"],
        degraded=data.get("degraded"),
    )


class OptimizationClient:
    """Talk to one :class:`~repro.service.daemon.OptimizationDaemon`.

    Parameters
    ----------
    base_url:
        The daemon's root URL (e.g. ``daemon.url`` or
        ``"http://host:8080"``).
    spec:
        Default batch :class:`OptimizeSpec` sent with every submission
        (per-job specs still override it daemon-side).
    timeout:
        Socket timeout per HTTP request, seconds.
    poll_interval / max_poll_interval:
        :meth:`wait` starts polling at ``poll_interval`` and backs off
        exponentially to ``max_poll_interval``.
    max_retries:
        How many ``429`` answers :meth:`submit` absorbs (sleeping per
        the daemon's ``Retry-After``) before giving up.
    max_retry_after:
        Ceiling on one retry sleep, seconds — a daemon bug can't park
        the client for an hour.
    sleep / clock:
        Injectable so tests drive retry/backoff without real waits.
    """

    def __init__(
        self,
        base_url: str,
        spec: Optional[OptimizeSpec] = None,
        timeout: float = 30.0,
        poll_interval: float = 0.05,
        max_poll_interval: float = 1.0,
        max_retries: int = 8,
        max_retry_after: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.spec = spec
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.max_poll_interval = max_poll_interval
        self.max_retries = max_retries
        self.max_retry_after = max_retry_after
        self._sleep = sleep
        self._clock = clock
        #: Client-side request telemetry (latency per route, request
        #: and retry counters); shares the injected clock so tests can
        #: fake both backoff and latency measurement.
        self.metrics = MetricsRegistry(clock=clock)
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(
                f"unsupported scheme {split.scheme!r}; the daemon "
                "speaks plain HTTP"
            )
        if not split.hostname:
            raise ValueError(f"base_url {base_url!r} has no host")
        self._host = split.hostname
        self._port = split.port if split.port is not None else 80
        self._path_prefix = split.path.rstrip("/")
        self._conn: Optional[http.client.HTTPConnection] = None
        self._conn_lock = threading.Lock()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.base_url!r})"

    # -- transport -----------------------------------------------------
    def _connection(
        self, timeout: Optional[float] = None
    ) -> http.client.HTTPConnection:
        if self._conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port,
                timeout=timeout if timeout is not None else self.timeout,
            )
            conn.connect()
            # Small request/response exchanges on a long-lived socket
            # hit the Nagle/delayed-ACK interaction (~40ms per round
            # trip once TCP quick-ack expires); send immediately.
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conn = conn
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def close(self) -> None:
        """Close the persistent connection (reopened lazily on use)."""
        with self._conn_lock:
            self._drop_connection()

    def __enter__(self) -> "OptimizationClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    #: Route labels are bounded to the daemon's fixed endpoint set so
    #: client metric cardinality cannot grow with batch ids.
    _KNOWN_ROUTES = frozenset((
        "optimize", "compact", "healthz", "ready", "stats",
        "jobs", "report", "metrics",
    ))

    def _metric_route(self, path: str) -> str:
        segment = path.lstrip("/").split("/", 1)[0]
        return segment if segment in self._KNOWN_ROUTES else "other"

    def _request(
        self, method: str, path: str, body: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, dict, Dict[str, str]]:
        """One JSON request over the persistent connection.

        HTTP error statuses return like successes; transport failures
        raise :class:`ClientError` — a deadline expiry specifically
        raises :class:`ClientTimeout`. A failure on a reused socket is
        retried once on a fresh one — the server may have closed an
        idle keep-alive connection between requests — but a fresh
        connection that fails means the daemon is down, and raises
        without a blind re-send (a POST may not be idempotent).

        ``timeout`` overrides the client-wide socket timeout for this
        one call: health/readiness probes can fail in milliseconds
        while real requests keep the 30 s budget.
        """
        route = self._metric_route(path)
        started = self._clock()
        outcome = "error"
        try:
            status, payload, headers = self._request_once(
                method, path, body, timeout)
            outcome = str(status)
            return status, payload, headers
        finally:
            self.metrics.histogram(
                "repro_client_request_seconds",
                "Client-observed request latency, by route",
            ).labels(route=route).observe(self._clock() - started)
            self.metrics.counter(
                "repro_client_requests_total",
                "Client requests, by method/route/status "
                "('error' = transport failure)",
            ).labels(method=method, route=route, status=outcome).inc()

    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, dict, Dict[str, str]]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        headers = {"Content-Type": "application/json"}
        with self._conn_lock:
            while True:
                fresh = self._conn is None
                try:
                    conn = self._connection(timeout)
                    if timeout is not None and conn.sock is not None:
                        conn.sock.settimeout(timeout)
                    conn.request(
                        method, self._path_prefix + path,
                        body=data, headers=headers,
                    )
                    resp = conn.getresponse()
                    raw = resp.read()  # drain so the socket is reusable
                    status = resp.status
                    resp_headers = dict(resp.getheaders())
                    if timeout is not None and conn.sock is not None:
                        conn.sock.settimeout(self.timeout)
                except (http.client.HTTPException, OSError) as exc:
                    self._drop_connection()
                    if fresh:
                        if isinstance(exc, socket.timeout):
                            budget = (timeout if timeout is not None
                                      else self.timeout)
                            raise ClientTimeout(
                                f"{method} {path} to {self.base_url} "
                                f"timed out after {budget}s"
                            ) from exc
                        raise ClientError(
                            f"daemon at {self.base_url} unreachable: {exc}"
                        ) from exc
                    continue
                try:
                    payload = json.loads(raw) if raw else {}
                except ValueError:
                    payload = {"error": f"non-JSON {status} response"}
                return status, payload, resp_headers

    @staticmethod
    def _error(status: int, payload: dict, what: str) -> ClientError:
        detail = payload.get("error", payload)
        return ClientError(f"{what}: HTTP {status}: {detail}", status=status)

    def _retry_after(self, payload: dict, headers: Mapping[str, str]) -> float:
        """The daemon's retry hint, clamped to ``[0, max_retry_after]``."""
        raw = headers.get("Retry-After")
        if raw is None:
            raw = payload.get("retry_after_seconds")
        try:
            delay = float(raw) if raw is not None else 1.0
        except (TypeError, ValueError):
            delay = 1.0
        return min(max(delay, 0.0), self.max_retry_after)

    # -- endpoints -----------------------------------------------------
    def submit(
        self,
        jobs: Union[Mapping[str, object], Sequence],
        spec: Optional[OptimizeSpec] = None,
    ) -> dict:
        """``POST /optimize`` a batch, riding out ``429`` saturation.

        Returns the acceptance payload (``{"id", "status", "jobs"}``).
        A saturated daemon is retried up to ``max_retries`` times,
        sleeping per its ``Retry-After`` hint; any other non-``202``
        answer raises :class:`ClientError` immediately.
        """
        body = fleet_to_body(jobs, spec=spec if spec is not None else self.spec)
        retries = 0
        while True:
            status, payload, headers = self._request(
                "POST", "/optimize", body)
            if status == 202:
                return payload
            if status == 429 and retries < self.max_retries:
                retries += 1
                self.metrics.counter(
                    "repro_client_submit_retries_total",
                    "429 saturation answers absorbed by submit()",
                ).inc()
                self._sleep(self._retry_after(payload, headers))
                continue
            raise self._error(status, payload, "submit rejected")

    def status(self, batch_id: str) -> dict:
        """``GET /jobs/<id>`` — one status snapshot."""
        status, payload, _ = self._request("GET", f"/jobs/{batch_id}")
        if status != 200:
            raise self._error(status, payload, f"status of {batch_id!r}")
        return payload

    def wait(self, batch_id: str, timeout: float = 600.0) -> dict:
        """Poll ``GET /jobs/<id>`` with backoff until done/failed.

        Raises :class:`ClientTimeout` when the batch is still pending
        at the deadline — callers distinguish "took too long" (maybe
        re-home the work) from transport or HTTP failures.
        """
        deadline = self._clock() + timeout
        interval = self.poll_interval
        while True:
            payload = self.status(batch_id)
            if payload["status"] in ("done", "failed"):
                return payload
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise ClientTimeout(
                    f"batch {batch_id!r} still {payload['status']!r} "
                    f"after {timeout}s"
                )
            self._sleep(min(interval, remaining))
            interval = min(interval * 2, self.max_poll_interval)

    def report(self, batch_id: str) -> FleetOptimizationReport:
        """``GET /report/<id>`` rehydrated into a real report."""
        return report_from_dict(self.raw_report(batch_id))

    def raw_report(self, batch_id: str) -> dict:
        """``GET /report/<id>`` as the daemon's JSON payload."""
        status, payload, _ = self._request("GET", f"/report/{batch_id}")
        if status != 200:
            raise self._error(status, payload, f"report of {batch_id!r}")
        return payload

    def stats(self) -> dict:
        """``GET /stats`` — cache, queue, and admission telemetry."""
        status, payload, _ = self._request("GET", "/stats")
        if status != 200:
            raise self._error(status, payload, "stats")
        return payload

    def health(self, timeout: Optional[float] = None) -> dict:
        """``GET /healthz`` — liveness probe. ``timeout`` overrides the
        client-wide socket timeout for this one probe."""
        status, payload, _ = self._request(
            "GET", "/healthz", timeout=timeout)
        if status != 200:
            raise self._error(status, payload, "health check")
        return payload

    # Probe-style alias: same shape as check_ready, liveness semantics.
    check_health = health

    def check_ready(self, timeout: Optional[float] = None) -> dict:
        """``GET /ready`` — raise unless the daemon will accept work.

        Returns the readiness payload on 200; a ``503`` (or any other
        answer) raises :class:`ClientError` carrying the daemon's
        stated reason, so callers fail fast with *why* instead of
        submitting into a daemon that can't run the batch. ``timeout``
        overrides the client-wide socket timeout for this one probe —
        a membership sweep over a dead host should cost milliseconds,
        not the full request budget.
        """
        status, payload, _ = self._request("GET", "/ready", timeout=timeout)
        if status == 200 and payload.get("ready"):
            return payload
        reason = payload.get("reason") or payload.get("error") or payload
        raise ClientError(
            f"daemon at {self.base_url} is not ready to accept work "
            f"(HTTP {status}): {reason}",
            status=status,
        )

    def compact(self, max_age_seconds: float) -> dict:
        """``POST /compact`` — evict stored results older than the
        horizon (provenance age GC); returns ``{"removed",
        "store_entries"}``."""
        status, payload, _ = self._request(
            "POST", "/compact", {"max_age_seconds": max_age_seconds})
        if status != 200:
            raise self._error(status, payload, "compact")
        return payload

    # -- the one-call surface ------------------------------------------
    def optimize_fleet(
        self,
        jobs: Union[Mapping[str, object], Sequence],
        spec: Optional[OptimizeSpec] = None,
        timeout: float = 600.0,
    ) -> FleetOptimizationReport:
        """Submit, wait, and rehydrate one batch end to end.

        The remote equivalent of
        :meth:`BatchOptimizer.optimize_fleet`; a batch that finishes
        ``failed`` raises :class:`BatchFailedError` with the daemon's
        error string.
        """
        accepted = self.submit(jobs, spec=spec)
        final = self.wait(accepted["id"], timeout=timeout)
        if final["status"] == "failed":
            raise BatchFailedError(
                f"batch {accepted['id']!r} failed: "
                f"{final.get('error', 'unknown error')}"
            )
        return self.report(accepted["id"])


class RemoteShard:
    """One logical shard host reached over HTTP.

    Satisfies the :class:`~repro.service.shard.ShardedOptimizer` shard
    contract (``optimize_fleet`` + ``stats``) by delegating to an
    :class:`OptimizationClient`, so a front-end can mix in-process
    :class:`~repro.service.batch.BatchOptimizer` shards and remote
    daemon processes freely. ``stats()`` returns the daemon's cache
    accounting (hits/misses/rate/store size) — the same mapping an
    in-process shard reports.

    Failures are raised as the typed shard taxonomy
    (:mod:`repro.service.errors`): transport death, failed readiness,
    and 5xx answers become :class:`ShardUnreachable`; a blown deadline
    becomes :class:`ShardTimeout`; a 429 storm past the client's retry
    budget becomes :class:`ShardSaturated` — all retryable, so a
    :class:`~repro.service.shard.ShardedOptimizer` re-homes this
    shard's jobs. A batch that genuinely *failed* on the daemon
    (:class:`BatchFailedError`) or was rejected as malformed
    propagates unchanged: deterministic failures would fail identically
    on every host, so they must surface, not bounce around the ring.
    """

    def __init__(
        self,
        client: Union[str, OptimizationClient],
        spec: Optional[OptimizeSpec] = None,
        timeout: float = 600.0,
        probe_timeout: float = 2.0,
    ) -> None:
        if isinstance(client, str):
            client = OptimizationClient(client, spec=spec)
        elif spec is not None:
            raise ValueError(
                "pass spec either to the OptimizationClient or to "
                "RemoteShard(url, spec=...), not both"
            )
        self.client = client
        self.timeout = timeout
        self.probe_timeout = probe_timeout

    @property
    def url(self) -> str:
        return self.client.base_url

    def __repr__(self) -> str:
        return f"RemoteShard({self.url!r})"

    def check_ready(self, timeout: Optional[float] = None) -> dict:
        """Readiness probe with a probe-scale timeout — the hook
        :class:`~repro.service.shard.ShardedOptimizer` membership
        sweeps call."""
        return self.client.check_ready(
            timeout=timeout if timeout is not None else self.probe_timeout)

    def optimize_fleet(
        self, jobs: Union[Mapping[str, object], Sequence]
    ) -> FleetOptimizationReport:
        host = self.url
        # Gate on readiness first: a daemon whose dispatcher is down
        # (or draining) would otherwise accept nothing but still cost
        # this shard its submit retries, and the resulting error would
        # not say *why*.
        try:
            self.client.check_ready(timeout=self.probe_timeout)
        except ShardFailure:
            raise
        except ClientError as exc:
            raise ShardUnreachable(host, str(exc)) from exc
        try:
            return self.client.optimize_fleet(jobs, timeout=self.timeout)
        except ShardFailure:
            raise
        except BatchFailedError:
            raise  # give-up: the batch fails deterministically anywhere
        except ClientTimeout as exc:
            raise ShardTimeout(host, str(exc)) from exc
        except ClientError as exc:
            if exc.status == 429:
                raise ShardSaturated(host, str(exc)) from exc
            if exc.status is None or exc.status >= 500:
                raise ShardUnreachable(host, str(exc)) from exc
            raise  # 4xx: a malformed batch is a give-up, not a re-home

    def stats(self) -> dict:
        return self.client.stats()["cache"]
