"""Fleet-scale batch optimization service.

The paper's fleet study (§3) analyzes tens of thousands of jobs, but
``Plumber.optimize`` drives one pipeline at a time. This module scales
the trace→analyze→optimize loop to a *fleet* of named pipelines:

* a :class:`BatchOptimizer` fans jobs out across a
  :mod:`concurrent.futures` worker pool (threads, processes, or inline),
* a **signature-keyed result cache** collapses structurally identical
  jobs — production fleets re-launch the same training program
  constantly — so each distinct (pipeline, machine, optimizer spec) is
  optimized exactly once,
* results travel between processes as serialized pipeline programs
  (:mod:`repro.graph.serialize`: "all Plumber traces are also valid
  programs"), keyed by :func:`repro.graph.signature.structural_signature`,
  :meth:`repro.host.machine.Machine.fingerprint`, and
  :meth:`repro.core.spec.OptimizeSpec.cache_token`,
* a :class:`FleetOptimizationReport` aggregates per-job speedups, the
  bottleneck histogram, and the cache hit rate, reusing the fleet
  analysis helpers and the plain-text table renderer.

One :class:`~repro.core.spec.OptimizeSpec` is the whole optimizer
configuration: the service holds a default spec, each job may carry its
own, and the effective per-job spec is both the worker payload and the
cache identity — an analytic trace can never masquerade as a simulated
one, and two jobs share work iff nothing that could change the result
differs.

The simulator is deterministic, so a worker-pool run is bit-identical to
optimizing each job serially with the same spec — tested, and the
property that makes result caching sound.
"""

from __future__ import annotations

import math
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.core.passes import resolve_passes
from repro.core.plumber import Plumber
from repro.core.spec import OptimizeSpec
from repro.fleet.analysis import (
    SpeedupStats,
    bottleneck_histogram,
    merge_degraded_sections,
    merged_cache_counts,
    speedup_distribution,
)
from repro.graph.datasets import Pipeline
from repro.graph.serialize import pipeline_from_json, pipeline_to_json
from repro.graph.signature import structural_signature
from repro.host.machine import Machine
from repro.obs import MetricsRegistry
from repro.runtime.backends import resolve_backend
from repro.service.store import InMemoryStore, ResultStore
from repro.util import canonical_hash


@dataclass(frozen=True)
class OptimizationJob:
    """One named unit of work for the batch service.

    ``spec`` overrides the service-wide :class:`OptimizeSpec` for this
    job only (``None`` = inherit): a µs-cost NLP job can run coarse-
    chunked or fully analytic while the rest of the fleet keeps the
    default simulator.

    ``granularity`` and ``backend`` are the pre-spec loose knobs, kept
    as deprecated shims: when set they are folded into the effective
    spec (on top of ``spec`` or the service default) and a
    ``DeprecationWarning`` is emitted. Use
    ``spec=service.spec.replace(backend=...)`` instead.
    """

    # Field order keeps the pre-spec positional surface intact:
    # OptimizationJob(name, pipeline, machine, granularity, backend)
    # constructs exactly as before, with `spec` keyword-position last.
    name: str
    pipeline: Pipeline
    machine: Machine
    granularity: Optional[int] = None
    backend: Optional[str] = None
    spec: Optional[OptimizeSpec] = None

    def __post_init__(self) -> None:
        if self.granularity is not None or self.backend is not None:
            warnings.warn(
                "OptimizationJob.granularity/backend are deprecated; "
                "carry a full OptimizeSpec via the `spec` field instead "
                "(e.g. spec=OptimizeSpec(backend='analytic'))",
                DeprecationWarning,
                stacklevel=3,
            )


@dataclass(frozen=True)
class JobResult:
    """Outcome of optimizing one fleet job.

    The rewritten pipeline is carried as its serialized program
    (JSON text) — the transport format between worker processes — and
    materialized on demand.
    """

    name: str
    signature: str
    cache_hit: bool
    baseline_throughput: float
    optimized_throughput: float
    predicted_throughput: float
    bottleneck: str
    decisions: Tuple[str, ...]
    pipeline_json: str
    #: the full result-cache identity (signature + machine fingerprint +
    #: spec token, hashed); shard-merge dedups distinct optimizations by
    #: this, not the structural signature alone
    cache_key: str = ""
    #: the stored entry's provenance (producer backend, spec token,
    #: caller-injected timestamp), when the store recorded one
    provenance: Optional[dict] = None

    @property
    def speedup(self) -> float:
        """Observed optimized / baseline throughput."""
        if not self.baseline_throughput > 0:
            return math.nan
        return self.optimized_throughput / self.baseline_throughput

    @property
    def pipeline(self) -> Pipeline:
        """The rewritten pipeline, rebuilt from its serialized program.

        On a cache hit ``pipeline_json`` is the cache representative's
        program (possibly stamped from a different template name), so
        the rebuilt pipeline is renamed after this job.
        """
        pipe = pipeline_from_json(self.pipeline_json)
        pipe.name = self.name
        return pipe


@dataclass
class FleetOptimizationReport:
    """Aggregated outcome of one :meth:`BatchOptimizer.optimize_fleet`.

    ``degraded`` is ``None`` for a fault-free run; a sharded dispatch
    that survived host failures records them here (failed shards,
    re-homed jobs, retry counts — see
    :func:`repro.fleet.analysis.merge_degraded_sections` for the
    schema). Every submitted job still appears in ``jobs`` exactly
    once; ``degraded`` says what it took to get them all.
    """

    jobs: List[JobResult]
    cache_hits: int
    cache_misses: int
    degraded: Optional[dict] = None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of jobs served from the signature cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def job(self, name: str) -> JobResult:
        """Look up one job's result by name."""
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(f"no job named {name!r}")

    @classmethod
    def merge(
        cls, reports: Iterable["FleetOptimizationReport"]
    ) -> "FleetOptimizationReport":
        """Merge per-shard reports into one fleet-wide report.

        Jobs are concatenated in the given order. The cache arithmetic
        is **deduplicated**, not summed: when the same cache key was a
        miss in two shards (each shard computed it independently), the
        merged report counts one distinct optimization and credits the
        surplus computation as a hit — the hit rate a single global
        cache would have reported. The dedup arithmetic lives in
        :func:`repro.fleet.analysis.merged_cache_counts`.
        """
        reports = list(reports)
        jobs = [j for r in reports for j in r.jobs]
        hits, misses = merged_cache_counts(
            # Pre-store results may lack a cache_key; fall back to the
            # structural signature, the dominant term of the key.
            (j.cache_key or j.signature, j.cache_hit) for j in jobs
        )
        return cls(
            jobs=jobs, cache_hits=hits, cache_misses=misses,
            degraded=merge_degraded_sections(
                r.degraded for r in reports),
        )

    def speedups(self) -> SpeedupStats:
        """Distribution of per-job observed speedups."""
        return speedup_distribution(j.speedup for j in self.jobs)

    def bottlenecks(self) -> Dict[str, int]:
        """Histogram of binding constraints across the fleet."""
        return bottleneck_histogram(j.bottleneck for j in self.jobs)

    def to_table(self) -> str:
        """Per-job plain-text table (name, speedup, bottleneck, cache)."""
        rows = [
            (
                j.name,
                f"{j.baseline_throughput:.2f}",
                f"{j.optimized_throughput:.2f}",
                f"{j.speedup:.2f}x",
                j.bottleneck,
                "hit" if j.cache_hit else "miss",
            )
            for j in self.jobs
        ]
        return format_table(
            ("job", "baseline mb/s", "optimized mb/s", "speedup",
             "bottleneck", "cache"),
            rows,
            title=f"Fleet optimization — {len(self.jobs)} jobs, "
                  f"{self.cache_hit_rate:.0%} cache hits",
        )

    def summary_table(self) -> str:
        """Fleet-level aggregate table."""
        stats = self.speedups()
        rows = [
            ("jobs", len(self.jobs)),
            ("distinct optimizations", self.cache_misses),
            ("cache hit rate", f"{self.cache_hit_rate:.0%}"),
            ("speedup geomean", f"{stats.geomean:.2f}x"),
            ("speedup median", f"{stats.median:.2f}x"),
            ("speedup max", f"{stats.maximum:.2f}x"),
        ]
        rows.extend(
            (f"bottleneck: {label}", count)
            for label, count in self.bottlenecks().items()
        )
        if self.degraded is not None:
            rows.append(("failed shards",
                         len(self.degraded.get("failed_shards", ()))))
            rows.append(("re-homed jobs",
                         len(self.degraded.get("rehomed_jobs", {}))))
        return format_table(("metric", "value"), rows,
                            title="Fleet optimization summary")


def merge_fleet_reports(
    reports: Iterable[FleetOptimizationReport],
) -> FleetOptimizationReport:
    """Module-level alias for :meth:`FleetOptimizationReport.merge`."""
    return FleetOptimizationReport.merge(reports)


# ----------------------------------------------------------------------
# Worker entry point — module-level so process pools can pickle it.
# ----------------------------------------------------------------------
def _optimize_serialized(payload: dict) -> dict:
    """Run one optimization from a JSON-compatible payload.

    Both directions of the hop are serialized programs, so this function
    can execute in another process (or, in principle, another host)
    without sharing any object graph with the caller. The spec travels
    with the job: the worker-side Plumber is configured from exactly the
    mapping the cache key hashed.
    """
    pipeline = pipeline_from_json(payload["pipeline"])
    machine = Machine.from_dict(payload["machine"])
    spec = OptimizeSpec.from_dict(payload["spec"])
    result = Plumber(machine, spec=spec).optimize(pipeline)
    return {
        "pipeline": pipeline_to_json(result.pipeline),
        "decisions": list(result.decisions),
        "predicted_throughput": result.predicted_throughput,
        "baseline_throughput": result.baseline_throughput,
        "optimized_throughput": result.model.observed_throughput,
        "bottleneck": result.bottleneck,
        # Which backend actually produced the final trace — for adaptive
        # specs this records the routing outcome, e.g. "adaptive[analytic]".
        "producer": getattr(result.model.trace, "backend", spec.backend_name),
    }


class BatchOptimizer:
    """Optimize a fleet of named pipelines through a worker pool.

    Parameters
    ----------
    machine:
        Default host for jobs submitted without one.
    executor:
        ``"thread"`` (default), ``"process"``, or ``"serial"``. Results
        are identical across all three — the simulator is deterministic.
        The simulation is pure Python, so only ``"process"`` buys real
        CPU parallelism; ``"thread"`` mostly overlaps with the GIL and
        is the safe default because the signature cache, not the pool,
        does the heavy lifting on fleets with duplicate structure.
    max_workers:
        Pool width (ignored for ``"serial"``).
    spec:
        The service-wide :class:`~repro.core.spec.OptimizeSpec`. Every
        job is optimized with this spec unless it carries its own; the
        effective per-job spec is part of that job's cache key. The
        spec's ``passes`` and ``backend`` must be registry *names* (they
        travel to worker processes as JSON).
    store:
        Where keyed result entries live: any
        :class:`~repro.service.store.ResultStore`. Defaults to a fresh
        :class:`~repro.service.store.InMemoryStore` (the pre-store
        behaviour). Pass a :class:`~repro.service.store.DiskStore` to
        make results survive process restarts — a second service process
        pointed at the same directory serves an unchanged fleet almost
        entirely from cache.
    clock:
        Zero-argument callable stamping each stored entry's provenance
        timestamp (``time.time`` by default). The caller injects it so
        stores never reach for wall-clock themselves.
    passes / iterations / trace_duration / trace_warmup / granularity /
    backend / event_budget:
        Convenience overrides: each non-None value replaces the
        corresponding field of ``spec`` (or of a default spec when none
        is given), mirroring the old keyword surface.
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        passes: Optional[Sequence[str]] = None,
        iterations: Optional[int] = None,
        trace_duration: Optional[float] = None,
        trace_warmup: Optional[float] = None,
        granularity: Optional[int] = None,
        backend: Optional[str] = None,
        event_budget: Optional[int] = None,
        spec: Optional[OptimizeSpec] = None,
        store: Optional[ResultStore] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if executor not in ("serial", "thread", "process"):
            raise ValueError(
                f"executor must be serial/thread/process, got {executor!r}"
            )
        base = spec if spec is not None else OptimizeSpec()
        self.machine = machine
        self.executor = executor
        self.max_workers = max_workers
        self.spec = base.with_overrides(
            passes=passes,
            iterations=iterations,
            trace_duration=trace_duration,
            trace_warmup=trace_warmup,
            granularity=granularity,
            backend=backend,
            event_budget=event_budget,
        )
        self._validate_spec(self.spec, "service")
        #: persistent signature-keyed result store (survives across
        #: optimize_fleet calls on this instance; with a DiskStore, also
        #: across processes)
        self.store: ResultStore = store if store is not None else InMemoryStore()
        self._clock: Callable[[], float] = clock if clock is not None else time.time
        #: cumulative cache accounting across every call on this
        #: instance (the daemon's /stats source); guarded by a lock —
        #: the daemon drives one optimizer from several dispatcher
        #: threads
        self.total_cache_hits = 0
        self.total_cache_misses = 0
        self._stats_lock = threading.Lock()
        #: instance-owned metrics (job latency, hit/miss, pool depth);
        #: snapshots travel in ``stats()["metrics"]`` so a remote shard's
        #: numbers merge into fleet-wide aggregates
        self.metrics = MetricsRegistry()

    # -- legacy attribute mirrors --------------------------------------
    @property
    def passes(self) -> Tuple[str, ...]:
        return self.spec.passes

    @property
    def iterations(self) -> int:
        return self.spec.iterations

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_spec(spec: OptimizeSpec, owner: str) -> None:
        """Service specs must serialize: named backend + named passes.

        Both names are resolved here so an unknown name fails at
        construction/submission time with the owner's context, not deep
        inside a worker pool.
        """
        if not isinstance(spec.backend, str):
            raise TypeError(
                f"{owner} backend must be a registered backend name "
                "(it travels to worker processes as part of the payload)"
            )
        resolve_backend(spec.backend)  # fail fast on unknown names
        for p in spec.passes:
            if not isinstance(p, str):
                raise TypeError(
                    f"{owner} passes must be registered pass names "
                    "(they travel to worker processes as part of the "
                    "payload)"
                )
        resolve_passes(spec.passes)  # fail fast on unknown names

    def _normalize(
        self,
        jobs: Union[Mapping[str, Pipeline], Sequence],
    ) -> List[Tuple[OptimizationJob, OptimizeSpec]]:
        """Accept ``{name: pipeline}`` mappings, ``(name, pipeline[,
        machine[, granularity[, backend]]])`` tuples, or objects with
        name/pipeline/machine (and optionally spec/granularity/backend)
        attributes — e.g. :class:`repro.fleet.generator.FleetPipeline`.

        Returns each job paired with its *effective* spec: the job's own
        spec (or the service default) with any loose granularity/backend
        overrides folded in.
        """
        if isinstance(jobs, Mapping):
            items = [
                (name, pipe, None, None, None, None)
                for name, pipe in jobs.items()
            ]
        else:
            items = []
            for entry in jobs:
                if isinstance(entry, tuple):
                    if not 2 <= len(entry) <= 5:
                        raise ValueError(
                            "job tuples are (name, pipeline[, machine"
                            f"[, granularity[, backend]]]), got {len(entry)} "
                            "elements"
                        )
                    name, pipe, *rest = entry + (None,) * (5 - len(entry))
                    items.append((name, pipe, rest[0], None, rest[1], rest[2]))
                else:
                    items.append((
                        entry.name,
                        entry.pipeline,
                        getattr(entry, "machine", None),
                        getattr(entry, "spec", None),
                        getattr(entry, "granularity", None),
                        getattr(entry, "backend", None),
                    ))
        seen: set = set()
        normalized: List[Tuple[OptimizationJob, OptimizeSpec]] = []
        for name, pipe, mach, job_spec, granularity, backend in items:
            if name in seen:
                raise ValueError(f"duplicate job name {name!r}")
            seen.add(name)
            machine = mach or self.machine
            if machine is None:
                raise ValueError(
                    f"job {name!r} has no machine and the service has no "
                    "default machine"
                )
            if backend is not None and not isinstance(backend, str):
                raise TypeError(
                    f"job {name!r}: per-job backend must be a "
                    "registered backend name"
                )
            spec = job_spec if job_spec is not None else self.spec
            try:
                spec = spec.with_overrides(granularity=granularity,
                                           backend=backend)
            except ValueError as exc:
                raise ValueError(f"job {name!r}: {exc}") from None
            try:
                self._validate_spec(spec, f"job {name!r}")
            except ValueError as exc:
                raise ValueError(f"job {name!r}: {exc}") from None
            normalized.append(
                (OptimizationJob(name, pipe, machine, spec=spec), spec)
            )
        return normalized

    def _cache_key(self, signature: str, machine: Machine,
                   spec: OptimizeSpec) -> str:
        """One result-cache identity: what was optimized (structural
        signature), where (machine fingerprint), and how (the spec)."""
        return canonical_hash({
            "signature": signature,
            "machine": machine.fingerprint(),
            "spec": spec.cache_token(),
        })

    def _make_pool(self) -> Optional[Executor]:
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.max_workers)
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return None

    # ------------------------------------------------------------------
    def optimize_fleet(
        self,
        jobs: Union[Mapping[str, Pipeline], Sequence],
    ) -> FleetOptimizationReport:
        """Optimize every job, deduplicating by structural signature.

        Jobs whose (pipeline signature, machine fingerprint, optimizer
        spec) key was already optimized — in this call, any earlier call
        on this instance, or (with a persistent store) any earlier
        *process* — reuse the stored result and are reported as cache
        hits. Distinct keys run concurrently on the worker pool; per-job
        results are identical to serial ``Plumber.optimize``.
        """
        fleet_started = self.metrics.clock()
        work = self._normalize(jobs)
        keyed: List[Tuple[OptimizationJob, str, str, OptimizeSpec]] = []
        # Fleet jobs stamped from one template share the Pipeline object;
        # hash each distinct object once, not once per job.
        sig_by_id: Dict[int, str] = {}
        for job, spec in work:
            sig = sig_by_id.get(id(job.pipeline))
            if sig is None:
                sig = structural_signature(job.pipeline)
                sig_by_id[id(job.pipeline)] = sig
            keyed.append((
                job, sig, self._cache_key(sig, job.machine, spec), spec,
            ))

        # Resolve each distinct key once: from the store when an intact
        # entry exists, otherwise as a pool task. The payload carries the
        # exact spec the cache key hashed.
        entries: Dict[str, dict] = {}
        pending: Dict[str, dict] = {}
        for job, _sig, key, spec in keyed:
            if key in entries or key in pending:
                continue
            entry = self.store.get(key)
            if entry is not None and isinstance(entry.get("result"), dict):
                entries[key] = entry
                continue
            pending[key] = {
                "pipeline": pipeline_to_json(job.pipeline),
                "machine": job.machine.to_dict(),
                "spec": spec.to_dict(),
            }

        if pending:
            clock = self.metrics.clock
            depth = self.metrics.gauge(
                "repro_service_pool_pending",
                "Distinct optimizations awaiting a pool worker",
            )
            job_seconds = self.metrics.histogram(
                "repro_service_job_seconds",
                "Per-distinct-optimization wallclock (submit to result), "
                "by backend",
            )

            def _backend_label(payload: dict) -> str:
                backend = payload["spec"].get("backend")
                return backend if isinstance(backend, str) else "custom"

            depth.set(len(pending))
            pool = self._make_pool()
            if pool is None:
                computed = {}
                for key, payload in pending.items():
                    start = clock()
                    computed[key] = _optimize_serialized(payload)
                    job_seconds.labels(
                        backend=_backend_label(payload)
                    ).observe(clock() - start)
                    depth.dec()
            else:
                with pool:
                    started = clock()
                    futures = {
                        key: pool.submit(_optimize_serialized, payload)
                        for key, payload in pending.items()
                    }
                    computed = {}
                    for key, future in futures.items():
                        computed[key] = future.result()
                        # Pool jobs overlap, so per-key elapsed time is
                        # submit-to-result (queueing included) — the
                        # latency a caller actually experiences.
                        job_seconds.labels(
                            backend=_backend_label(pending[key])
                        ).observe(clock() - started)
                        depth.dec()
            for key, result in computed.items():
                entry = {
                    "result": result,
                    "provenance": {
                        "producer": result.get("producer"),
                        "spec": pending[key]["spec"],
                        "created_at": self._clock(),
                    },
                }
                self.store.put(key, entry)
                entries[key] = entry

        results: List[JobResult] = []
        hits = misses = 0
        fresh = set(pending)
        for job, sig, key, _spec in keyed:
            cached = entries[key]["result"]
            is_hit = key not in fresh
            if is_hit:
                hits += 1
            else:
                misses += 1
                fresh.discard(key)  # later jobs with this key are hits
            results.append(
                JobResult(
                    name=job.name,
                    signature=sig,
                    cache_hit=is_hit,
                    baseline_throughput=cached["baseline_throughput"],
                    optimized_throughput=cached["optimized_throughput"],
                    predicted_throughput=cached["predicted_throughput"],
                    bottleneck=cached["bottleneck"],
                    decisions=tuple(cached["decisions"]),
                    pipeline_json=cached["pipeline"],
                    cache_key=key,
                    provenance=entries[key].get("provenance"),
                )
            )
        with self._stats_lock:
            self.total_cache_hits += hits
            self.total_cache_misses += misses
        jobs_total = self.metrics.counter(
            "repro_service_jobs_total",
            "Fleet jobs served, by cache outcome",
        )
        if hits:
            jobs_total.labels(result="hit").inc(hits)
        if misses:
            jobs_total.labels(result="miss").inc(misses)
        self.metrics.histogram(
            "repro_service_fleet_seconds",
            "optimize_fleet wallclock per call",
        ).observe(self.metrics.clock() - fleet_started)
        return FleetOptimizationReport(
            jobs=results, cache_hits=hits, cache_misses=misses
        )

    def stats(self) -> dict:
        """Cumulative cache accounting across this instance's lifetime.

        ``metrics`` is the full instrument snapshot (bucket state
        included), so per-shard ``stats()`` responses can be merged into
        one fleet-wide latency distribution downstream.
        """
        with self._stats_lock:
            hits, misses = self.total_cache_hits, self.total_cache_misses
        total = hits + misses
        return {
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / total if total else 0.0,
            "store_entries": len(self.store),
            "metrics": self.metrics.as_dict(),
        }

    def compact_store(self, max_age_seconds: float,
                      now: Optional[float] = None) -> int:
        """Garbage-collect stored results by provenance age.

        Evicts every store entry whose ``provenance.created_at`` is at
        least ``max_age_seconds`` older than ``now`` (the service's
        injected clock by default — the same clock that stamped the
        entries). Returns the number of entries removed. Requires a
        store with a ``compact`` method (both built-ins have one);
        raises :class:`TypeError` otherwise.
        """
        compact = getattr(self.store, "compact", None)
        if not callable(compact):
            raise TypeError(
                f"store {type(self.store).__name__} does not support "
                "compaction (no compact method)"
            )
        return compact(
            max_age_seconds,
            now=self._clock() if now is None else now,
        )

    def optimize_one(self, name: str, pipeline: Pipeline,
                     machine: Optional[Machine] = None,
                     spec: Optional[OptimizeSpec] = None) -> JobResult:
        """Optimize a single named pipeline through the same cache."""
        job = OptimizationJob(name, pipeline, machine or self.machine,
                              spec=spec)
        return self.optimize_fleet([job]).jobs[0]
