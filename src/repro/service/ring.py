"""Consistent-hash ring for signature-affine shard placement.

The modulo hash the sharding layer started with (``shard_index``) has a
fatal elasticity property: changing ``num_shards`` from ``N`` to ``N±1``
remaps almost *every* signature, so one host joining or leaving the
fleet invalidates nearly all per-host result-cache locality at once. A
consistent-hash ring fixes that: each host owns many pseudo-random arcs
of a fixed 2^256 key space (``vnodes`` virtual nodes per host), and a
signature belongs to the host owning the first virtual node at or after
the signature's point, wrapping around. Because every host's virtual
nodes are derived only from its own id, adding or removing a host
leaves all *surviving* hosts' points untouched — only the keys on the
arcs the departed host owned (about ``K/N`` of ``K`` keys across ``N``
hosts, property-tested) move, and each moves to the next surviving
host on the ring.

Everything is keyed by stable identifiers — host id strings and
structural-signature digests — through SHA-256, never Python's
process-seeded ``hash()``, so placement is deterministic across
processes, hosts, and runs: the property that makes per-shard result
caches dedup exactly as well as one global cache would
(:mod:`repro.service.shard`).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES", "default_host_ids"]

#: virtual nodes per host. 64 points keeps the largest/smallest host
#: load ratio tight (stddev of per-host share ~ 1/sqrt(vnodes)) while a
#: full ring rebuild stays microseconds.
DEFAULT_VNODES = 64


def default_host_ids(num_hosts: int) -> Tuple[str, ...]:
    """Stable host ids for positionally-identified shards.

    ``ShardedOptimizer`` callers that pass a bare optimizer list get
    these ids, so placement is a pure function of ``(num_hosts,
    signature)`` — deterministic across processes exactly like the old
    modulo scheme, but elastic.
    """
    if num_hosts < 1:
        raise ValueError(f"num_hosts must be >= 1, got {num_hosts}")
    return tuple(f"shard-{i}" for i in range(num_hosts))


def _point(token: str) -> int:
    """A token's position on the 2^256 ring (SHA-256, process-stable)."""
    return int(hashlib.sha256(token.encode("utf-8")).hexdigest(), 16)


class HashRing:
    """A virtual-node consistent-hash ring over host-id strings.

    Hosts can be added and removed at any time; placement of a key
    depends only on the *current host set* (never on insertion order or
    on hosts that came and went), which is what makes membership churn
    cheap: ``remove(host)`` recomputes nothing for survivors — their
    virtual nodes are untouched — it only re-homes the departed host's
    arcs to their ring successors.
    """

    def __init__(
        self,
        hosts: Iterable[str] = (),
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._hosts: set = set()
        #: sorted (point, host) pairs — the ring itself
        self._ring: List[Tuple[int, str]] = []
        for host in hosts:
            self.add(host)

    # -- membership -----------------------------------------------------
    def _host_points(self, host: str) -> List[Tuple[int, str]]:
        return [(_point(f"vnode:{host}#{i}"), host)
                for i in range(self.vnodes)]

    def add(self, host: str) -> None:
        """Admit a host; only keys on its new arcs move to it."""
        if not isinstance(host, str) or not host:
            raise ValueError(f"host id must be a non-empty string, "
                             f"got {host!r}")
        if host in self._hosts:
            raise ValueError(f"host {host!r} is already on the ring")
        self._hosts.add(host)
        for pair in self._host_points(host):
            bisect.insort(self._ring, pair)

    def remove(self, host: str) -> None:
        """Retire a host; its arcs fall to their ring successors.

        Survivors' virtual nodes are untouched, so every key *not*
        owned by ``host`` keeps its placement — no rehashing.
        """
        if host not in self._hosts:
            raise KeyError(f"host {host!r} is not on the ring")
        self._hosts.discard(host)
        self._ring = [pair for pair in self._ring if pair[1] != host]

    @property
    def hosts(self) -> Tuple[str, ...]:
        """Current members, sorted for stable iteration."""
        return tuple(sorted(self._hosts))

    def __len__(self) -> int:
        return len(self._hosts)

    def __contains__(self, host: object) -> bool:
        return host in self._hosts

    def __repr__(self) -> str:
        return (f"HashRing(hosts={list(self.hosts)!r}, "
                f"vnodes={self.vnodes})")

    def copy(self) -> "HashRing":
        """An independent ring with the same membership (cheap: the
        per-host points are recomputed from ids, not copied)."""
        return HashRing(self._hosts, vnodes=self.vnodes)

    # -- placement ------------------------------------------------------
    def host_for(self, key: str) -> str:
        """The host owning ``key`` (any string; typically a structural
        signature digest)."""
        if not self._ring:
            raise LookupError("ring has no hosts")
        point = _point(f"key:{key}")
        idx = bisect.bisect_right(self._ring, (point, ""))
        if idx == len(self._ring):
            idx = 0  # wrap: first vnode owns the top arc
        return self._ring[idx][1]

    def placement(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: owning host}`` for many keys at once."""
        return {key: self.host_for(key) for key in keys}

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each current host owns (all hosts
        reported, including empty ones) — load-skew introspection."""
        counts = {host: 0 for host in self.hosts}
        for key in keys:
            counts[self.host_for(key)] += 1
        return counts
