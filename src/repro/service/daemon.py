"""Long-running HTTP front-end for the batch optimization service.

The paper's premise is that pipeline optimization should be a cheap,
repeatable *service*, not a one-off tuning session. This module turns
:class:`~repro.service.batch.BatchOptimizer` into one: a stdlib
``http.server`` daemon that accepts fleets (or single jobs) as
serialized programs, runs them on the existing pool machinery in the
background, and serves results and cache statistics over four
endpoints:

* ``POST /optimize`` — submit a batch. Body: ``{"jobs": [{"name",
  "pipeline", "machine"?, "spec"?}, ...], "spec"?: {...}}`` where
  ``pipeline`` is a serialized program
  (:func:`repro.graph.serialize.pipeline_to_dict`), ``machine`` a
  :meth:`~repro.host.machine.Machine.to_dict` mapping, and ``spec`` an
  :meth:`~repro.core.spec.OptimizeSpec.to_dict` mapping. A bare
  ``{"name", "pipeline", ...}`` object submits a single job. Returns
  ``202`` with a batch id, or ``429`` with a retry hint when admission
  control is saturated.
* ``GET /jobs/<id>`` — batch status (``queued``/``running``/``done``/
  ``failed``).
* ``GET /report/<id>`` — the finished batch's full
  :class:`FleetOptimizationReport` as JSON (rewritten programs
  included: all results are valid programs).
* ``GET /stats`` — cumulative cache hit rate, store size, queue depth,
  and per-lane in-flight counts.
* ``GET /healthz`` — pure liveness (the process answers HTTP).
* ``GET /ready`` — readiness: ``200 {"ready": true}`` when the
  dispatcher pool is accepting work and the result store is reachable,
  else ``503`` with a reason. Load balancers and
  :class:`~repro.service.client.RemoteShard` gate dispatch on this.
* ``POST /compact`` — garbage-collect the result store by provenance
  age. Body: ``{"max_age_seconds": <number>}``; every stored entry
  whose ``provenance.created_at`` is at least that old is evicted, so a
  long-lived daemon's store doesn't accumulate stale results forever.

Query strings are ignored for routing (``POST /optimize?src=ci`` routes
like ``POST /optimize``), and any unexpected error inside a handler
answers ``500`` with a JSON body instead of dropping the connection.

**Self-care and graceful drain.** With ``compact_interval_seconds``
set, a background sweep thread garbage-collects the store on its own
schedule (client ``POST /compact`` still works). ``close()`` — and
``SIGTERM``, via :meth:`OptimizationDaemon.install_sigterm_handler` —
drains instead of hard-stopping: ``/ready`` flips to 503 with a
``draining`` hint, new ``POST /optimize`` submissions are refused (503
+ ``"draining": true``), in-flight batches get up to the drain deadline
to finish while status/report endpoints keep answering, and only then
does the daemon stop. Load balancers and
:class:`~repro.service.shard.ShardedOptimizer` membership probes key
off the 503 to re-home traffic with zero dropped work.

**Admission control** bounds in-flight work *per lane*: jobs whose spec
names the ``analytic`` backend are microseconds of work and get a wide
lane; everything else (``simulate``, ``adaptive``, custom backends) may
pay for discrete-event simulation and is bounded separately — one
µs-budget NLP fleet can't be starved behind a queue of simulate-backend
vision jobs, and simulate jobs can't monopolize the host (the
heterogeneous-fleet fairness item from ROADMAP).
"""

from __future__ import annotations

import itertools
import json
import math
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.spec import OptimizeSpec
from repro.graph.serialize import pipeline_from_dict
from repro.host.machine import Machine
from repro.obs import (
    MetricsRegistry,
    global_registry,
    merge_snapshots,
    render_text,
    summarize_snapshot,
)
from repro.service.batch import (
    BatchOptimizer,
    FleetOptimizationReport,
    OptimizationJob,
)

#: admission lanes: closed-form analytic jobs vs anything that may
#: run the discrete-event simulator (simulate, adaptive, custom)
ANALYTIC_LANE = "analytic"
SIMULATE_LANE = "simulate"


def job_lane(spec: OptimizeSpec) -> str:
    """Which admission lane a job's effective spec belongs to."""
    return (
        ANALYTIC_LANE if spec.backend_name == "analytic" else SIMULATE_LANE
    )


class AdmissionController:
    """Bounds in-flight jobs per lane; rejections carry a retry hint.

    ``None`` bounds mean unlimited. A bound of ``0`` rejects every job
    in that lane — useful for hosts that must never simulate.
    """

    def __init__(
        self,
        max_simulate_jobs: Optional[int] = 4,
        max_analytic_jobs: Optional[int] = 256,
    ) -> None:
        for bound in (max_simulate_jobs, max_analytic_jobs):
            if bound is not None and bound < 0:
                raise ValueError("admission bounds must be >= 0")
        self.bounds = {
            SIMULATE_LANE: max_simulate_jobs,
            ANALYTIC_LANE: max_analytic_jobs,
        }
        self._in_flight = {SIMULATE_LANE: 0, ANALYTIC_LANE: 0}
        self._lock = threading.Lock()
        self._occupancy_gauge: Optional[object] = None
        self._rejections_counter: Optional[object] = None

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Mirror lane occupancy and rejections into ``registry``.

        The gauges track ``_in_flight`` exactly (updated inside the
        admission lock's critical sections), so a ``/metrics`` scrape
        and ``/stats``'s ``in_flight_jobs`` can never disagree.
        """
        self._occupancy_gauge = registry.gauge(
            "repro_daemon_lane_in_flight",
            "Jobs currently admitted, by admission lane",
        )
        self._rejections_counter = registry.counter(
            "repro_daemon_admission_rejections_total",
            "Batches refused admission, by the lane that was full",
        )
        with self._lock:
            for lane, count in self._in_flight.items():
                self._occupancy_gauge.labels(lane=lane).set(count)

    def _sync_gauges_locked(self) -> None:
        if self._occupancy_gauge is not None:
            for lane, count in self._in_flight.items():
                self._occupancy_gauge.labels(lane=lane).set(count)

    def note_rejection(self, lane: str) -> None:
        """Count one refused batch against ``lane`` (no state change)."""
        if self._rejections_counter is not None:
            self._rejections_counter.labels(lane=lane).inc()

    def oversized_lane(self, lanes: Dict[str, int]) -> Optional[str]:
        """The first lane whose count alone exceeds its bound, if any.

        Such a batch can *never* be admitted, even on an idle daemon —
        callers should reject it permanently (split the batch) rather
        than tell the client to retry.
        """
        for lane, count in lanes.items():
            bound = self.bounds.get(lane)
            if bound is not None and count > bound:
                return lane
        return None

    def try_admit(self, lanes: Dict[str, int]) -> Tuple[bool, str]:
        """Atomically admit a batch's per-lane job counts, or explain.

        Returns ``(True, "")`` and reserves the slots, or ``(False,
        hint)`` leaving state untouched.
        """
        with self._lock:
            for lane, count in lanes.items():
                bound = self.bounds.get(lane)
                if bound is None:
                    continue
                if self._in_flight[lane] + count > bound:
                    hint = (
                        f"{lane} lane is full "
                        f"({self._in_flight[lane]}/{bound} jobs in flight, "
                        f"batch needs {count} more); retry when in-flight "
                        "work drains"
                    )
                    if lane == SIMULATE_LANE:
                        hint += (", or resubmit with an analytic-backend "
                                 "spec")
                    self.note_rejection(lane)
                    return False, hint
            for lane, count in lanes.items():
                self._in_flight[lane] += count
            self._sync_gauges_locked()
            return True, ""

    def release(self, lanes: Dict[str, int]) -> None:
        with self._lock:
            for lane, count in lanes.items():
                self._in_flight[lane] = max(0, self._in_flight[lane] - count)
            self._sync_gauges_locked()

    def in_flight(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._in_flight)


@dataclass
class _Batch:
    """One submitted batch's lifecycle record."""

    id: str
    jobs: List[OptimizationJob]
    lanes: Dict[str, int]
    status: str = "queued"          # queued -> running -> done | failed
    report: Optional[FleetOptimizationReport] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    finished_at: Optional[float] = None


class _RequestError(Exception):
    """A client error with an HTTP status.

    ``extra`` keys are merged into the JSON error payload — e.g. the
    ``draining`` hint a load balancer keys failover on.
    """

    def __init__(self, status: int, message: str,
                 extra: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.extra = extra or {}


def _finite(value: float) -> Optional[float]:
    """JSON-safe float: NaN/inf become null."""
    return value if math.isfinite(value) else None


class OptimizationDaemon:
    """A persistent optimization service over one :class:`BatchOptimizer`.

    Parameters
    ----------
    optimizer:
        The batch service to run jobs on (pool, spec, and result store
        included). Defaults to a thread-pool ``BatchOptimizer`` — pass
        one configured with a :class:`~repro.service.store.DiskStore`
        for a daemon whose cache survives restarts.
    host / port:
        Bind address; port ``0`` picks a free port (see ``daemon.port``
        after :meth:`start`).
    max_simulate_jobs / max_analytic_jobs:
        Per-lane admission bounds (``None`` = unlimited).
    workers:
        Concurrent batches executed by the daemon's dispatcher. Each
        batch then fans its distinct jobs out on the optimizer's own
        pool.
    max_finished_batches:
        How many finished (done/failed) batch records — including their
        full reports — are retained for ``GET /report/<id>``; the
        oldest are evicted beyond this bound so a long-running daemon's
        memory stays flat. ``None`` retains everything.
    compact_interval_seconds / compact_max_age_seconds:
        Self-care GC: when an interval is given, a background sweep
        thread runs :meth:`run_gc_sweep` every interval, evicting
        stored results older than ``compact_max_age_seconds`` — the
        same provenance-age compaction ``POST /compact`` triggers, but
        no longer dependent on a client remembering to call it. Ages
        are measured with the optimizer's injected clock (the clock
        that stamped the entries), so sweeps are testable without
        wall-clock waits.
    drain_timeout_seconds:
        How long :meth:`close` (graceful drain) waits for in-flight
        batches to finish before shutting the pool down anyway.
    monotonic:
        Injectable monotonic clock used for the drain deadline.
    """

    def __init__(
        self,
        optimizer: Optional[BatchOptimizer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_simulate_jobs: Optional[int] = 4,
        max_analytic_jobs: Optional[int] = 256,
        workers: int = 2,
        max_finished_batches: Optional[int] = 256,
        compact_interval_seconds: Optional[float] = None,
        compact_max_age_seconds: float = 3600.0,
        drain_timeout_seconds: float = 30.0,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_finished_batches is not None and max_finished_batches < 1:
            raise ValueError("max_finished_batches must be >= 1")
        if compact_interval_seconds is not None and \
                compact_interval_seconds <= 0:
            raise ValueError("compact_interval_seconds must be positive")
        if compact_max_age_seconds < 0:
            raise ValueError("compact_max_age_seconds must be >= 0")
        if drain_timeout_seconds < 0:
            raise ValueError("drain_timeout_seconds must be >= 0")
        self.optimizer = optimizer if optimizer is not None else BatchOptimizer()
        self.admission = AdmissionController(
            max_simulate_jobs=max_simulate_jobs,
            max_analytic_jobs=max_analytic_jobs,
        )
        self._host = host
        self._requested_port = port
        self._workers = workers
        self._max_finished = max_finished_batches
        self._compact_interval = compact_interval_seconds
        self._compact_max_age = compact_max_age_seconds
        self._drain_timeout = drain_timeout_seconds
        self._monotonic = monotonic
        self._batches: Dict[str, _Batch] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: notified whenever a batch finishes — the drain wait's pulse
        self._batch_done = threading.Condition(self._lock)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._gc_thread: Optional[threading.Thread] = None
        self._gc_stop = threading.Event()
        self._draining = False
        self.rejected = 0
        self.gc_sweeps = 0
        self.gc_removed = 0
        #: daemon-owned instruments (request latency, lane occupancy,
        #: batch outcomes, GC/drain state); merged with the optimizer's
        #: and the process-global registries for ``GET /metrics``
        self.metrics = MetricsRegistry(clock=monotonic)
        self.admission.bind_metrics(self.metrics)
        self._draining_gauge = self.metrics.gauge(
            "repro_daemon_draining",
            "1 while the daemon is draining (refusing new work)",
        )
        self._draining_gauge.set(0)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "OptimizationDaemon":
        """Bind and serve in a background thread (idempotent; a closed
        daemon can be started again)."""
        self._draining = False
        self._draining_gauge.set(0)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-daemon"
            )
        if self._gc_thread is None and self._compact_interval is not None:
            self._gc_stop.clear()
            self._gc_thread = threading.Thread(
                target=self._gc_loop,
                name="repro-daemon-gc",
                daemon=True,
            )
            self._gc_thread.start()
        if self._server is not None:
            return self
        daemon = self

        class Handler(_DaemonHandler):
            pass

        Handler.daemon = daemon
        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-daemon-http",
            daemon=True,
        )
        self._server_thread.start()
        return self

    def install_sigterm_handler(self) -> bool:
        """Drain gracefully on ``SIGTERM`` (supervisor/orchestrator
        stop): flip ``/ready`` to 503, finish in-flight batches up to
        the drain deadline, then exit 0. Returns ``False`` when the
        handler cannot be installed (not the main thread)."""
        daemon = self

        def _drain(signum, frame):  # noqa: ARG001 - signal signature
            daemon.close(wait=True)
            raise SystemExit(0)

        try:
            signal.signal(signal.SIGTERM, _drain)
        except ValueError:  # signal only works in the main thread
            return False
        return True

    # -- self-care GC sweep --------------------------------------------
    def _gc_loop(self) -> None:
        while not self._gc_stop.wait(self._compact_interval):
            self.run_gc_sweep()

    def run_gc_sweep(self) -> int:
        """One provenance-age compaction pass over the result store.

        The periodic sweep thread calls this every
        ``compact_interval_seconds``; it is public so tests (and
        operators) can force a sweep deterministically. Returns the
        number of entries evicted; a store without ``compact`` support
        sweeps to 0 instead of raising — self-care must never kill the
        daemon.
        """
        try:
            removed = self.optimizer.compact_store(self._compact_max_age)
        except Exception:  # noqa: BLE001 - self-care never raises
            removed = 0
        with self._lock:
            self.gc_sweeps += 1
            self.gc_removed += removed
        self.metrics.counter(
            "repro_daemon_gc_sweeps_total", "Store GC sweeps run",
        ).inc()
        self.metrics.counter(
            "repro_daemon_gc_removed_total", "Store entries evicted by GC",
        ).inc(removed)
        return removed

    # -- graceful drain ------------------------------------------------
    def _active_batches(self) -> int:
        return sum(1 for b in self._batches.values()
                   if b.status in ("queued", "running"))

    def close(self, wait: bool = True,
              drain_timeout: Optional[float] = None) -> None:
        """Drain gracefully, then stop serving.

        The daemon first flips to *draining*: ``GET /ready`` answers
        503 and new ``POST /optimize`` submissions are rejected with a
        ``draining`` hint, while status/report endpoints keep serving
        so clients can collect in-flight results. In-flight batches get
        up to ``drain_timeout`` seconds (default: the constructor's
        ``drain_timeout_seconds``) to finish; whatever is still running
        after that is abandoned to its dispatcher thread. Only then do
        the HTTP server and the pool stop. ``wait=False`` skips the
        drain wait entirely (the old hard-stop behaviour).
        """
        self._draining = True
        self._draining_gauge.set(1)
        if wait and self._pool is not None:
            budget = (drain_timeout if drain_timeout is not None
                      else self._drain_timeout)
            deadline = self._monotonic() + budget
            with self._batch_done:
                while self._active_batches() > 0:
                    remaining = deadline - self._monotonic()
                    if remaining <= 0:
                        break
                    self._batch_done.wait(min(remaining, 0.1))
        if self._gc_thread is not None:
            self._gc_stop.set()
            self._gc_thread.join(timeout=5)
            self._gc_thread = None
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._server_thread = None
        if self._pool is not None:
            with self._lock:
                drained = self._active_batches() == 0
            self._pool.shutdown(wait=wait and drained,
                                cancel_futures=not drained)
            self._pool = None

    def __enter__(self) -> "OptimizationDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("daemon is not running (call start())")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    # -- request handling ----------------------------------------------
    def submit(self, body: dict) -> dict:
        """Validate, admit, and enqueue one ``POST /optimize`` body."""
        if self._draining:
            raise _RequestError(
                503,
                "daemon is draining: in-flight batches are finishing, "
                "new work is refused; resubmit to another host",
                extra={"draining": True},
            )
        jobs = self._parse_jobs(body)
        lanes: Dict[str, int] = {}
        for job in jobs:
            lane = job_lane(job.spec if job.spec is not None
                            else self.optimizer.spec)
            lanes[lane] = lanes.get(lane, 0) + 1
        # A batch larger than a lane's whole bound can never be
        # admitted; a 429/retry answer would have the client retry
        # forever. Reject it permanently with the actual remedy.
        too_big = self.admission.oversized_lane(lanes)
        if too_big is not None:
            with self._lock:
                self.rejected += 1
            self.admission.note_rejection(too_big)
            raise _RequestError(
                400,
                f"batch needs {lanes[too_big]} {too_big}-lane jobs but "
                f"the lane bound is {self.admission.bounds[too_big]}; "
                "split the batch or raise the daemon's "
                f"max_{too_big}_jobs",
            )
        admitted, hint = self.admission.try_admit(lanes)
        if not admitted:
            with self._lock:
                self.rejected += 1
            raise _RequestError(429, hint)
        batch = _Batch(
            id=f"batch-{next(self._ids):04d}",
            jobs=jobs,
            lanes=lanes,
            submitted_at=self.optimizer._clock(),
        )
        with self._lock:
            self._batches[batch.id] = batch
            pool = self._pool
        try:
            if pool is None:
                raise RuntimeError("daemon dispatcher is not running")
            pool.submit(self._run_batch, batch)
        except RuntimeError:
            # Enqueue failed (daemon closing): release the reserved
            # lane slots and drop the record, or they leak forever.
            self.admission.release(batch.lanes)
            with self._lock:
                self._batches.pop(batch.id, None)
            raise _RequestError(503, "daemon is shutting down; resubmit "
                                     "to a running daemon")
        return {"id": batch.id, "status": batch.status, "jobs": len(jobs)}

    def _parse_jobs(self, body: dict) -> List[OptimizationJob]:
        if not isinstance(body, dict):
            raise _RequestError(400, "body must be a JSON object")
        if "jobs" in body:
            raw_jobs = body["jobs"]
            if not isinstance(raw_jobs, list) or not raw_jobs:
                raise _RequestError(400, "'jobs' must be a non-empty list")
        elif "pipeline" in body:
            raw_jobs = [body]  # single-job form
        else:
            raise _RequestError(
                400, "body needs a 'jobs' list or a single 'pipeline'"
            )
        default_spec = None
        if body.get("spec") is not None and "jobs" in body:
            default_spec = self._parse_spec(body["spec"], "batch spec")
        jobs: List[OptimizationJob] = []
        seen: set = set()
        for i, raw in enumerate(raw_jobs):
            if not isinstance(raw, dict):
                raise _RequestError(400, f"job #{i} must be an object")
            name = raw.get("name")
            if not isinstance(name, str) or not name:
                raise _RequestError(400, f"job #{i} needs a 'name'")
            if name in seen:
                raise _RequestError(400, f"duplicate job name {name!r}")
            seen.add(name)
            try:
                pipeline = pipeline_from_dict(raw["pipeline"])
            except KeyError:
                raise _RequestError(400, f"job {name!r} needs a 'pipeline'")
            except Exception as exc:
                raise _RequestError(
                    400, f"job {name!r}: bad pipeline program: {exc}"
                )
            machine = None
            if raw.get("machine") is not None:
                try:
                    machine = Machine.from_dict(raw["machine"])
                except Exception as exc:
                    raise _RequestError(
                        400, f"job {name!r}: bad machine: {exc}"
                    )
            if machine is None:
                machine = self.optimizer.machine
            if machine is None:
                raise _RequestError(
                    400,
                    f"job {name!r} has no machine and the daemon's "
                    "optimizer has no default machine",
                )
            spec = default_spec
            if raw.get("spec") is not None:
                spec = self._parse_spec(raw["spec"], f"job {name!r} spec")
            jobs.append(
                OptimizationJob(name, pipeline, machine, spec=spec)
            )
        return jobs

    @staticmethod
    def _parse_spec(data: object, what: str) -> OptimizeSpec:
        if not isinstance(data, dict):
            raise _RequestError(400, f"{what} must be an object")
        try:
            return OptimizeSpec.from_dict(data)
        except Exception as exc:
            raise _RequestError(400, f"bad {what}: {exc}")

    def _run_batch(self, batch: _Batch) -> None:
        batch.status = "running"
        started = self.metrics.clock()
        try:
            batch.report = self.optimizer.optimize_fleet(batch.jobs)
            batch.status = "done"
        except Exception as exc:  # report, don't kill the daemon
            batch.error = f"{type(exc).__name__}: {exc}"
            batch.status = "failed"
        finally:
            batch.finished_at = self.optimizer._clock()
            self.metrics.counter(
                "repro_daemon_batches_total", "Batches run, by outcome",
            ).labels(status=batch.status).inc()
            self.metrics.histogram(
                "repro_daemon_batch_seconds",
                "Batch wallclock from dispatch to finish",
            ).observe(self.metrics.clock() - started)
            self.admission.release(batch.lanes)
            self._evict_finished()
            with self._batch_done:
                self._batch_done.notify_all()  # pulse the drain wait

    def _evict_finished(self) -> None:
        """Drop the earliest-*finished* batch records beyond the bound.

        Eviction must order by ``finished_at``, not submission order: a
        long-running batch submitted early can finish *after* quick
        batches submitted later, and evicting by submission order would
        drop the record a client just saw turn ``done`` (status 200 on
        ``/jobs/<id>`` followed by 404 on ``/report/<id>``) while
        keeping ones that finished long ago.
        """
        if self._max_finished is None:
            return
        with self._lock:
            finished = sorted(
                (b for b in self._batches.values()
                 if b.status in ("done", "failed")),
                # A None finished_at (status flipped, `finally` not yet
                # run) sorts last: never evict a batch that just ended.
                key=lambda b: (b.finished_at is None,
                               b.finished_at if b.finished_at is not None
                               else 0.0),
            )
            for stale in finished[: max(0, len(finished) - self._max_finished)]:
                self._batches.pop(stale.id, None)

    def compact(self, body: dict) -> dict:
        """Run one ``POST /compact`` store GC pass."""
        if not isinstance(body, dict):
            raise _RequestError(400, "body must be a JSON object")
        horizon = body.get("max_age_seconds")
        if isinstance(horizon, bool) or not isinstance(horizon, (int, float)) \
                or not horizon >= 0:
            raise _RequestError(
                400, "'max_age_seconds' must be a number >= 0"
            )
        try:
            removed = self.optimizer.compact_store(horizon)
        except TypeError as exc:
            raise _RequestError(
                501, f"store does not support compaction: {exc}"
            )
        return {"removed": removed,
                "store_entries": len(self.optimizer.store)}

    # -- views ----------------------------------------------------------
    def _batch(self, batch_id: str) -> _Batch:
        with self._lock:
            batch = self._batches.get(batch_id)
        if batch is None:
            raise _RequestError(404, f"unknown batch {batch_id!r}")
        return batch

    def job_status(self, batch_id: str) -> dict:
        batch = self._batch(batch_id)
        status = {
            "id": batch.id,
            "status": batch.status,
            "jobs": len(batch.jobs),
            "lanes": batch.lanes,
        }
        if batch.error is not None:
            status["error"] = batch.error
        return status

    def report_json(self, batch_id: str) -> dict:
        batch = self._batch(batch_id)
        if batch.status == "failed":
            raise _RequestError(500, f"batch failed: {batch.error}")
        if batch.status != "done" or batch.report is None:
            raise _RequestError(
                409, f"batch {batch_id!r} is {batch.status}; report is "
                     "available once status is 'done'"
            )
        report = batch.report
        payload = {
            "id": batch.id,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "cache_hit_rate": report.cache_hit_rate,
            "jobs": [
                {
                    "name": j.name,
                    "signature": j.signature,
                    # the full result-cache identity: remote reports
                    # merged by FleetOptimizationReport.merge dedup
                    # their hit arithmetic by this
                    "cache_key": j.cache_key,
                    "cache_hit": j.cache_hit,
                    "baseline_throughput": _finite(j.baseline_throughput),
                    "optimized_throughput": _finite(j.optimized_throughput),
                    "predicted_throughput": _finite(j.predicted_throughput),
                    "speedup": _finite(j.speedup),
                    "bottleneck": j.bottleneck,
                    "decisions": list(j.decisions),
                    # all results are valid programs (§4.1)
                    "pipeline": json.loads(j.pipeline_json),
                    "provenance": j.provenance,
                }
                for j in report.jobs
            ],
        }
        # Byte-faithful on the happy path: a fault-free report carries
        # no degraded key at all, exactly like pre-failover daemons.
        if report.degraded is not None:
            payload["degraded"] = report.degraded
        return payload

    def health(self) -> dict:
        """``GET /healthz`` — liveness only: answering at all is the
        signal, so the payload is a bare ok."""
        return {"status": "ok"}

    def readiness(self) -> Tuple[bool, dict]:
        """``GET /ready`` — whether the daemon can take work *right now*.

        Liveness (:meth:`health`) only says the HTTP thread is alive;
        readiness also requires the dispatcher pool to be running and
        the result store to answer — a daemon with a broken
        :class:`~repro.service.store.DiskStore` directory would accept
        batches it can never finish.
        """
        if self._draining:
            with self._lock:
                active = self._active_batches()
            return False, {
                "ready": False,
                "draining": True,
                "reason": f"draining: {active} in-flight batch(es) "
                          "finishing, no new work accepted",
            }
        with self._lock:
            pool = self._pool
        if pool is None:
            return False, {
                "ready": False,
                "reason": "dispatcher pool is not running",
            }
        try:
            entries = len(self.optimizer.store)
        except Exception as exc:  # noqa: BLE001 - any store fault = not ready
            return False, {
                "ready": False,
                "reason": (
                    f"result store unreachable: "
                    f"{type(exc).__name__}: {exc}"
                ),
            }
        return True, {"ready": True, "store_entries": entries}

    def metrics_snapshot(self) -> dict:
        """Everything this process measures, as one merged snapshot.

        Three registries feed ``GET /metrics``: the daemon's own
        (requests, lanes, batches, GC, drain), the optimizer's (job
        latency, hit/miss, pool depth), and the process-global one
        (trace backends, pass driver, simulation engine). Metric names
        are namespaced per layer, so the merge is collision-free.
        """
        snaps = [self.metrics.as_dict()]
        optimizer_metrics = getattr(self.optimizer, "metrics", None)
        if optimizer_metrics is not None:
            snaps.append(optimizer_metrics.as_dict())
        snaps.append(global_registry().as_dict())
        return merge_snapshots(snaps)

    def metrics_text(self) -> str:
        """``GET /metrics`` text exposition of :meth:`metrics_snapshot`."""
        return render_text(self.metrics_snapshot())

    def stats(self) -> dict:
        with self._lock:
            batches = list(self._batches.values())
            rejected = self.rejected
            gc_sweeps, gc_removed = self.gc_sweeps, self.gc_removed
        by_status: Dict[str, int] = {}
        for b in batches:
            by_status[b.status] = by_status.get(b.status, 0) + 1
        return {
            "cache": self.optimizer.stats(),
            "queue_depth": by_status.get("queued", 0)
                           + by_status.get("running", 0),
            "batches": by_status,
            "in_flight_jobs": self.admission.in_flight(),
            "admission_bounds": dict(self.admission.bounds),
            "rejected_batches": rejected,
            "draining": self._draining,
            "gc": {
                "interval_seconds": self._compact_interval,
                "max_age_seconds": self._compact_max_age,
                "sweeps": gc_sweeps,
                "removed": gc_removed,
            },
            # Compact flat view of the daemon's own instruments, so
            # pre-/metrics clients see the new numbers on the endpoint
            # they already poll (the full bucketed form is /metrics).
            "metrics": summarize_snapshot(self.metrics.as_dict()),
        }


class _DaemonHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning daemon (set by ``start``)."""

    daemon: OptimizationDaemon  # injected per-daemon subclass attribute
    protocol_version = "HTTP/1.1"
    # Keep-alive clients poll in small request/response exchanges;
    # Nagle + delayed ACK turns each one into a ~40ms stall once the
    # connection outlives TCP quick-ack. Write immediately instead.
    disable_nagle_algorithm = True

    # -- plumbing -------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
        pass

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        self._sent_status = status
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        self._sent_status = status
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: _RequestError) -> None:
        payload = {"error": str(exc), **exc.extra}
        headers = {}
        if exc.status == 429:
            payload["retry_after_seconds"] = 1
            headers["Retry-After"] = "1"
        self._send_json(exc.status, payload, headers)

    def _route_path(self) -> str:
        """The request path with any query string stripped — clients
        may pass parameters (``POST /optimize?source=ci``) without
        breaking routing."""
        return self.path.split("?", 1)[0]

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise _RequestError(400, "invalid Content-Length header")
        try:
            return json.loads(self.rfile.read(length) or b"null")
        except ValueError:
            raise _RequestError(400, "body is not valid JSON")

    #: endpoints whose first path segment is a safe (bounded) route label
    _KNOWN_ROUTES = frozenset(
        ("optimize", "compact", "healthz", "ready", "stats", "jobs",
         "report", "metrics")
    )

    def _metric_route(self) -> str:
        """Bounded-cardinality route label: ``/jobs/<id>`` collapses to
        ``jobs``, anything unrecognized to ``other`` — client-supplied
        paths must not mint unbounded metric label sets."""
        parts = [p for p in self._route_path().split("/") if p]
        if parts and parts[0] in self._KNOWN_ROUTES:
            return parts[0]
        return "other"

    def _timed(self, method: str, handler: Callable[[], None]) -> None:
        """Run one request handler, recording latency and outcome."""
        metrics = self.daemon.metrics
        route = self._metric_route()
        self._sent_status = 0  # overwritten by the first send
        start = metrics.clock()
        try:
            handler()
        finally:
            metrics.histogram(
                "repro_daemon_request_seconds",
                "HTTP request service time, by route",
            ).labels(route=route).observe(metrics.clock() - start)
            metrics.counter(
                "repro_daemon_requests_total",
                "HTTP requests served, by route, method, and status",
            ).labels(
                route=route, method=method, status=str(self._sent_status),
            ).inc()

    # -- verbs ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        self._timed("POST", self._handle_post)

    def _handle_post(self) -> None:
        try:
            path = self._route_path().rstrip("/")
            if path == "/optimize":
                self._send_json(202, self.daemon.submit(
                    self._read_json_body()))
            elif path == "/compact":
                self._send_json(200, self.daemon.compact(
                    self._read_json_body()))
            else:
                raise _RequestError(
                    404, f"no such endpoint {self.path}")
        except _RequestError as exc:
            self._send_error_json(exc)
        except Exception as exc:  # noqa: BLE001 - answer, don't drop
            self._send_internal_error(exc)

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        self._timed("GET", self._handle_get)

    def _handle_get(self) -> None:
        try:
            parts = [p for p in self._route_path().split("/") if p]
            if parts == ["healthz"]:
                self._send_json(200, self.daemon.health())
            elif parts == ["ready"]:
                ready, payload = self.daemon.readiness()
                self._send_json(200 if ready else 503, payload)
            elif parts == ["stats"]:
                self._send_json(200, self.daemon.stats())
            elif parts == ["metrics"]:
                # Like status/report, /metrics keeps serving while the
                # daemon drains — observability lasts to the final
                # request. Text exposition by default; ?format=json
                # returns the mergeable snapshot form.
                if self._query_param("format") == "json":
                    self._send_json(200, self.daemon.metrics_snapshot())
                else:
                    self._send_text(200, self.daemon.metrics_text())
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.daemon.job_status(parts[1]))
            elif len(parts) == 2 and parts[0] == "report":
                self._send_json(200, self.daemon.report_json(parts[1]))
            else:
                raise _RequestError(404, f"no such endpoint {self.path}")
        except _RequestError as exc:
            self._send_error_json(exc)
        except Exception as exc:  # noqa: BLE001 - answer, don't drop
            self._send_internal_error(exc)

    def _query_param(self, key: str) -> Optional[str]:
        """One query-string value (the first, if repeated)."""
        if "?" not in self.path:
            return None
        query = self.path.split("?", 1)[1]
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == key:
                return value
        return None

    def _send_internal_error(self, exc: Exception) -> None:
        """A bug in a handler (or the daemon behind it) must answer
        ``500`` with a JSON error body, not propagate into
        ``BaseHTTPRequestHandler`` and silently drop the connection."""
        try:
            self._send_json(500, {
                "error": f"internal error: {type(exc).__name__}: {exc}"
            })
        except OSError:
            pass  # client already gone; nothing left to answer
