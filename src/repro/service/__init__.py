"""Fleet-scale optimization as a persistent service.

``BatchOptimizer`` runs the trace→analyze→optimize loop for a fleet of
named pipelines across a worker pool, deduplicating structurally
identical jobs through a signature-keyed result store and aggregating a
:class:`FleetOptimizationReport` (per-job speedup, bottleneck histogram,
cache hit rate). Around it:

* :mod:`repro.service.store` — pluggable result stores; ``DiskStore``
  persists entries as atomic JSON files so the cache survives process
  restarts; both stores garbage-collect by provenance age
  (``compact``).
* :mod:`repro.service.daemon` — a long-running HTTP front-end
  (``POST /optimize``, ``GET /jobs/<id>``, ``GET /report/<id>``,
  ``GET /stats``, ``POST /compact``) with per-lane admission control.
* :mod:`repro.service.client` — a stdlib-``urllib``
  ``OptimizationClient`` wrapping those endpoints (429 retry, polling
  backoff, report rehydration) and a ``RemoteShard`` adapter binding a
  client to one daemon URL.
* :mod:`repro.service.shard` — deterministic signature-hash sharding of
  job batches across logical hosts (in-process optimizers or remote
  daemons over HTTP), dispatched concurrently, with per-shard reports
  merged into one.
* :mod:`repro.service.ring` — the consistent-hash ring under the
  sharder: virtual-node placement keyed by host id, so membership
  changes move only ~K/N signatures instead of reshuffling everything.
* :mod:`repro.service.errors` — the typed failure taxonomy
  (``ShardUnreachable`` / ``ShardTimeout`` / ``ShardSaturated``,
  retryable vs give-up) that drives ``ShardedOptimizer``'s failover.
"""

from repro.core.spec import OptimizeSpec
from repro.service.batch import (
    BatchOptimizer,
    FleetOptimizationReport,
    JobResult,
    OptimizationJob,
    merge_fleet_reports,
)
from repro.service.client import (
    BatchFailedError,
    ClientError,
    ClientTimeout,
    OptimizationClient,
    RemoteShard,
)
from repro.service.daemon import (
    AdmissionController,
    OptimizationDaemon,
    job_lane,
)
from repro.service.errors import (
    ShardDispatchError,
    ShardFailure,
    ShardSaturated,
    ShardTimeout,
    ShardUnreachable,
)
from repro.service.ring import HashRing, default_host_ids
from repro.service.shard import ShardedOptimizer, shard_fleet, shard_index
from repro.service.store import DiskStore, InMemoryStore, ResultStore

__all__ = [
    "AdmissionController",
    "BatchFailedError",
    "BatchOptimizer",
    "ClientError",
    "ClientTimeout",
    "DiskStore",
    "FleetOptimizationReport",
    "HashRing",
    "InMemoryStore",
    "JobResult",
    "OptimizationClient",
    "OptimizationDaemon",
    "OptimizationJob",
    "OptimizeSpec",
    "RemoteShard",
    "ResultStore",
    "ShardDispatchError",
    "ShardFailure",
    "ShardSaturated",
    "ShardTimeout",
    "ShardUnreachable",
    "ShardedOptimizer",
    "default_host_ids",
    "job_lane",
    "merge_fleet_reports",
    "shard_fleet",
    "shard_index",
]
