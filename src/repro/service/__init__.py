"""Fleet-scale batch optimization service.

``BatchOptimizer`` runs the trace→analyze→optimize loop for a fleet of
named pipelines across a worker pool, deduplicating structurally
identical jobs through a signature-keyed result cache and aggregating a
:class:`FleetOptimizationReport` (per-job speedup, bottleneck histogram,
cache hit rate).
"""

from repro.core.spec import OptimizeSpec
from repro.service.batch import (
    BatchOptimizer,
    FleetOptimizationReport,
    JobResult,
    OptimizationJob,
)

__all__ = [
    "BatchOptimizer",
    "FleetOptimizationReport",
    "JobResult",
    "OptimizationJob",
    "OptimizeSpec",
]
