"""Cache placement (§4.3 "Memory", §4.4 "Materialization Cost").

"Caching aggressively is always desirable... the optimal cache minimizes
total work by placing it as high in the pipeline as possible" subject to
the materialized size fitting in host memory and the stream being
deterministic and finite.

Two solvers:

* :func:`plan_cache_greedy` — the paper's default for linear pipelines:
  pick the cacheable node closest to the root whose materialized size
  fits (greedy, and optimal for linear topologies).
* :func:`plan_cache_exhaustive` — the Boolean-decision variant sketched
  for general topologies: score every candidate by the LP throughput of
  the cached pipeline and return the best (with one candidate per linear
  segment this is the exact optimum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.lp import solve_allocation
from repro.core.rates import NodeRates, PipelineModel
from repro.host.memory import MemoryBudget


@dataclass(frozen=True)
class CacheDecision:
    """Where to cache and what it costs."""

    target: str               # cache inserted directly above this node
    materialized_bytes: float
    storage: str = "memory"
    expected_speedup_hint: Optional[float] = None

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"cache after {self.target!r} "
            f"({self.materialized_bytes / 1e9:.1f} GB, {self.storage})"
        )


def plan_cache_greedy(
    model: PipelineModel,
    memory: Optional[MemoryBudget] = None,
) -> Optional[CacheDecision]:
    """Greedy closest-to-root cache that fits in memory.

    Returns ``None`` when no cacheable node fits (e.g. everything
    downstream of a random augmentation, or the materialized sizes all
    exceed RAM).
    """
    if memory is None:
        memory = MemoryBudget(model.trace.host.memory_bytes)
    for rates in model.cache_candidates():
        if not math.isfinite(rates.materialized_bytes):
            continue
        if memory.fits(rates.materialized_bytes):
            return CacheDecision(
                target=rates.name,
                materialized_bytes=rates.materialized_bytes,
            )
    return None


def plan_cache_per_branch(
    model: PipelineModel,
    memory: Optional[MemoryBudget] = None,
) -> List[CacheDecision]:
    """Greedy closest-to-root caching, one cache per disjoint subtree.

    On a chain this returns exactly :func:`plan_cache_greedy`'s single
    decision. On a multi-source DAG, when the merged stream (or anything
    above it) is uncacheable — randomness taint, infinite cardinality,
    or materialized size over budget — each branch can still cache
    independently: candidates are scanned closest-to-root first, and
    accepting one marks its whole subtree as covered, so the scan only
    ever adds caches in *other* branches. All decisions draw on the one
    shared memory budget.
    """
    if memory is None:
        memory = MemoryBudget(model.trace.host.memory_bytes)
    decisions: List[CacheDecision] = []
    covered: set = set()
    reserved = 0.0
    # Reversed-topological candidate order guarantees a node is visited
    # before anything in its subtree, so accepted subtrees are disjoint.
    for rates in model.cache_candidates():
        if rates.name in covered:
            continue
        if not math.isfinite(rates.materialized_bytes):
            continue
        if not memory.fits(reserved + rates.materialized_bytes):
            continue
        decisions.append(
            CacheDecision(
                target=rates.name,
                materialized_bytes=rates.materialized_bytes,
            )
        )
        reserved += rates.materialized_bytes
        covered |= _subtree_names(model, rates.name)
    return decisions


def plan_cache_exhaustive(
    model: PipelineModel,
    memory: Optional[MemoryBudget] = None,
) -> Optional[CacheDecision]:
    """Score every feasible candidate by post-cache LP throughput.

    Caching at node ``i`` zeroes the steady-state cost of ``i`` and
    everything below it; we re-solve the LP with those nodes' rates
    removed and the disk constraint waived, then pick the candidate with
    the highest predicted throughput. This implements the "Boolean
    decision variables for each cache candidate over the LP" extension
    by enumeration (exact for the tree sizes input pipelines have).
    """
    if memory is None:
        memory = MemoryBudget(model.trace.host.memory_bytes)
    feasible: List[NodeRates] = [
        r for r in model.cache_candidates()
        if math.isfinite(r.materialized_bytes)
        and memory.fits(r.materialized_bytes)
    ]
    if not feasible:
        return None

    best: Optional[CacheDecision] = None
    best_rate = -math.inf
    for rates in feasible:
        predicted = _cached_lp_throughput(model, rates.name)
        if predicted > best_rate + 1e-9:
            best_rate = predicted
            best = CacheDecision(
                target=rates.name,
                materialized_bytes=rates.materialized_bytes,
                expected_speedup_hint=(
                    predicted / model.observed_throughput
                    if model.observed_throughput > 0
                    else None
                ),
            )
    return best


def _cached_lp_throughput(model: PipelineModel, cache_target: str) -> float:
    """LP throughput with ``cache_target`` and its subtree cost-free."""
    below = _subtree_names(model, cache_target)
    survivors = [r for r in model.cpu_nodes() if r.name not in below]
    if not survivors:
        return math.inf
    # Serve-side rate of the slowest surviving node under a full-core
    # allocation mirrors the LP with the cached nodes dropped; reuse the
    # solver by building a filtered view.
    import copy

    filtered = copy.copy(model)
    filtered.rates = {
        name: r for name, r in model.rates.items() if name not in below
    }
    filtered.bytes_per_minibatch = 0.0  # cache removes all I/O
    solution = solve_allocation(filtered)
    return solution.predicted_throughput


def _subtree_names(model: PipelineModel, target: str) -> set:
    """``target`` plus every node below it."""
    node = model.pipeline.node(target)
    names = set()
    stack = [node]
    while stack:
        n = stack.pop()
        names.add(n.name)
        stack.extend(n.inputs)
    return names
