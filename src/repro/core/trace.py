"""The trace file format: serialized program + counter snapshot.

"Plumber periodically dumps these statistics into a file along with the
entire serialized pipeline program. Joining the Datasets with their
program counterpart enables building an in-memory model of the pipeline
dataflow." (§4.1)

A :class:`PipelineTrace` is exactly that artifact: node counters, the
program, host facts, and the measurement window. It is JSON round-trip
serializable so traces can be saved and analyzed offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

from repro.graph.datasets import Pipeline
from repro.graph.serialize import pipeline_from_dict, pipeline_to_dict
from repro.host.disk import DiskSpec
from repro.host.machine import Machine
from repro.runtime.executor import RunResult
from repro.runtime.stats import NodeStats


@dataclass
class HostInfo:
    """Host facts a trace carries for offline optimization."""

    cores: int
    core_speed: float
    memory_bytes: float
    disk: DiskSpec
    iterator_overhead: float

    @classmethod
    def from_machine(cls, machine: Machine) -> "HostInfo":
        """Extract the optimizer-relevant facts from a machine."""
        return cls(
            cores=machine.cores,
            core_speed=machine.core_speed,
            memory_bytes=machine.memory_bytes,
            disk=machine.disk,
            iterator_overhead=machine.iterator_overhead,
        )

    def to_dict(self) -> dict:
        return {
            "cores": self.cores,
            "core_speed": self.core_speed,
            "memory_bytes": self.memory_bytes,
            "disk": self.disk.to_dict(),
            "iterator_overhead": self.iterator_overhead,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HostInfo":
        return cls(
            cores=data["cores"],
            core_speed=data["core_speed"],
            memory_bytes=data["memory_bytes"],
            disk=DiskSpec.from_dict(data["disk"]),
            iterator_overhead=data["iterator_overhead"],
        )


@dataclass
class PipelineTrace:
    """One tracing session's output.

    ``backend`` names the acquisition method ("simulate" for the
    discrete-event simulator, "analytic" for the closed-form fast path,
    "inprocess" for real execution) and is part of a trace's identity:
    two traces of the same program acquired through different backends
    are different artifacts and must not share cache entries downstream.
    """

    program: dict                     # serialized pipeline
    stats: Dict[str, NodeStats]       # measurement-window counters
    host: HostInfo
    measured_seconds: float
    root_throughput: float            # observed minibatches/second
    cpu_utilization: float = 0.0
    backend: str = "simulate"         # how the trace was acquired

    @classmethod
    def from_run(cls, result: RunResult) -> "PipelineTrace":
        """Build a trace from a simulated run."""
        return cls(
            program=pipeline_to_dict(result.pipeline),
            stats=result.stats,
            host=HostInfo.from_machine(result.machine),
            measured_seconds=result.measured_seconds,
            root_throughput=result.throughput,
            cpu_utilization=result.cpu_utilization,
            backend="simulate",
        )

    def pipeline(self) -> Pipeline:
        """Rebuild the traced pipeline (it is a valid program, §4.2)."""
        return pipeline_from_dict(self.program)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the whole trace to JSON."""
        return json.dumps(
            {
                "program": self.program,
                "stats": {k: v.to_dict() for k, v in self.stats.items()},
                "host": self.host.to_dict(),
                "measured_seconds": self.measured_seconds,
                "root_throughput": self.root_throughput,
                "cpu_utilization": self.cpu_utilization,
                "backend": self.backend,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineTrace":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            program=data["program"],
            stats={
                k: NodeStats.from_dict(v) for k, v in data["stats"].items()
            },
            host=HostInfo.from_dict(data["host"]),
            measured_seconds=data["measured_seconds"],
            root_throughput=data["root_throughput"],
            cpu_utilization=data.get("cpu_utilization", 0.0),
            backend=data.get("backend", "simulate"),
        )
