"""Plumber's user-facing API (§4.1, §4.2, §B).

The paper's workflow, one line for the user:

1. **Trace** the pipeline under a benchmark workload (runtime flag).
2. **Analyze** — resource-accounted rates, dataset sizes, randomness.
3. **Optimize** — a pipeline of :class:`~repro.core.passes.OptimizerPass`
   stages (LP parallelism, prefetch insertion, cache insertion by
   default), run for two iterations "so that the estimated rates more
   closely reflect the final pipeline's performance".
4. **Rewrite** and hand back a pipeline with the same signature.

The whole configuration — passes, iterations, backend, trace window,
granularity, memory — is one :class:`~repro.core.spec.OptimizeSpec`;
the legacy keyword arguments remain as conveniences that build a spec.

Entry points: :class:`Plumber` for step-by-step control,
:func:`optimize_pipeline` for the one-liner, and :func:`optimize` — the
``@optimize`` annotation with ``pick_best`` multi-pipeline queries
(Figure 11).
"""

from __future__ import annotations

import functools
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.cache_planner import CacheDecision
from repro.core.lp import LPSolution
from repro.core.passes import PassContext, resolve_passes
from repro.core.rates import PipelineModel, build_model
from repro.core.rewriter import strip_caches
from repro.core.spec import DEFAULT_PASSES, OptimizeSpec
from repro.core.trace import PipelineTrace
from repro.graph.datasets import Pipeline
from repro.host.machine import Machine
from repro.host.memory import MemoryBudget
from repro.obs import global_registry
from repro.runtime.backends import BackendSpec, resolve_backend
from repro.runtime.executor import RunConfig


@dataclass
class OptimizationResult:
    """The rewritten pipeline plus the decision log."""

    pipeline: Pipeline
    model: PipelineModel
    lp: Optional[LPSolution]
    cache: Optional[CacheDecision]
    decisions: List[str] = field(default_factory=list)
    predicted_throughput: float = math.nan
    #: observed throughput of the *unoptimized* pipeline's first trace
    baseline_throughput: float = math.nan
    #: every cache planned (one per branch on multi-source DAGs);
    #: ``cache`` is the closest-to-root entry, kept for compatibility
    caches: List[CacheDecision] = field(default_factory=list)
    #: one entry per (iteration, registered pass), in execution order —
    #: wallclock spent (plan + apply + re-trace), actions taken, and
    #: predicted vs realized throughput gain; see ``Plumber.optimize``
    pass_telemetry: List[dict] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Observed optimized / baseline throughput (nan if unknown)."""
        if not self.baseline_throughput > 0:
            return math.nan
        return self.model.observed_throughput / self.baseline_throughput

    @property
    def bottleneck(self) -> str:
        """The LP's binding constraint, or ``"none"`` without an LP pass."""
        return self.lp.bottleneck if self.lp is not None else "none"


class Plumber:
    """Tracing + rewriting front-end bound to one machine.

    A ``Plumber`` is re-entrant: it holds only immutable configuration
    (one machine, one :class:`~repro.core.spec.OptimizeSpec`), and every
    :meth:`optimize` call builds its own simulation, model, and (when
    not supplied) :class:`MemoryBudget`, so concurrent optimize calls
    never share mutable state. The batch optimization service
    (:mod:`repro.service`) runs optimize calls concurrently from worker
    pools (one short-lived ``Plumber`` per job payload).

    Parameters
    ----------
    machine:
        The (simulated) host to trace and optimize for.
    spec:
        The full optimizer configuration. The remaining keyword
        arguments are conveniences layered on top of it (each non-None
        value overrides the corresponding spec field), so
        ``Plumber(machine, backend="analytic")`` and
        ``Plumber(machine, spec=OptimizeSpec(backend="analytic"))`` are
        the same plumber.
    trace_duration / trace_warmup:
        Virtual seconds of tracing per iteration (the paper uses ~1
        minute of wallclock; in simulation a couple of virtual seconds
        reaches steady state).
    backend:
        Trace acquisition backend: ``"simulate"`` (default, the
        discrete-event tracer), ``"analytic"`` (closed-form fast path),
        ``"adaptive"`` (analytic first, simulation fallback), or any
        :class:`~repro.runtime.backends.TraceBackend` object.
    event_budget:
        Cap on simulation events per trace when ``granularity`` is
        unset; the granularity auto-tuner coarsens chunks until the
        estimated event count fits. All backends honour it, so a given
        spec means the same chunking regardless of how the trace is
        acquired.
    """

    def __init__(
        self,
        machine: Machine,
        trace_duration: Optional[float] = None,
        trace_warmup: Optional[float] = None,
        granularity: Optional[int] = None,
        backend: BackendSpec = None,
        event_budget: Optional[int] = None,
        spec: Optional[OptimizeSpec] = None,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        base = spec if spec is not None else OptimizeSpec()
        self.machine = machine
        #: clock used for pass-telemetry wallclock (injectable in tests)
        self.monotonic = monotonic
        self.spec = base.with_overrides(
            trace_duration=trace_duration,
            trace_warmup=trace_warmup,
            granularity=granularity,
            backend=backend,
            event_budget=event_budget,
        )
        self.backend = resolve_backend(self.spec.backend)

    # -- legacy attribute mirrors (read-only views over the spec) ------
    @property
    def trace_duration(self) -> float:
        return self.spec.trace_duration

    @property
    def trace_warmup(self) -> float:
        return self.spec.trace_warmup

    @property
    def granularity(self) -> Optional[int]:
        return self.spec.granularity

    @property
    def event_budget(self) -> Optional[int]:
        return self.spec.event_budget

    # ------------------------------------------------------------------
    def trace(self, pipeline: Pipeline, **overrides) -> PipelineTrace:
        """Collect a trace of the pipeline through the trace backend.

        ``backend=None`` (or omitted) inherits the instance's backend,
        matching the per-job override convention in the batch service.
        """
        backend = resolve_backend(
            overrides.pop("backend", None) or self.backend
        )
        config = RunConfig(
            duration=overrides.pop("duration", self.spec.trace_duration),
            warmup=overrides.pop("warmup", self.spec.trace_warmup),
            granularity=overrides.pop("granularity", self.spec.granularity),
            event_budget=overrides.pop(
                "event_budget", self.spec.event_budget
            ),
            trace=overrides.pop("trace", True),
            engine=overrides.pop("engine", self.spec.sim_engine),
            **overrides,
        )
        return backend.trace(pipeline, self.machine, config)

    def analyze(self, trace: PipelineTrace) -> PipelineModel:
        """Derive the operational model from a trace."""
        return build_model(trace)

    def model(self, pipeline: Pipeline) -> PipelineModel:
        """Trace + analyze in one call."""
        return self.analyze(self.trace(pipeline))

    def _model_for_spec(self, pipeline: Pipeline,
                        spec: OptimizeSpec) -> PipelineModel:
        """Trace + analyze under an explicit spec (the optimize driver's
        path, so a per-call spec override governs trace acquisition too,
        not just pass selection)."""
        config = RunConfig(
            duration=spec.trace_duration,
            warmup=spec.trace_warmup,
            granularity=spec.granularity,
            event_budget=spec.event_budget,
            trace=True,
            engine=spec.sim_engine,
        )
        backend = resolve_backend(spec.backend)
        return self.analyze(backend.trace(pipeline, self.machine, config))

    # ------------------------------------------------------------------
    def optimize(
        self,
        pipeline: Pipeline,
        passes: Optional[Sequence] = None,
        iterations: Optional[int] = None,
        memory: Optional[MemoryBudget] = None,
        allocate_remaining: Optional[bool] = None,
        spec: Optional[OptimizeSpec] = None,
    ) -> OptimizationResult:
        """Drive the pass pipeline and return the rewritten pipeline.

        Every pass in ``spec.passes`` (a registry name or an
        :class:`~repro.core.passes.OptimizerPass` object) is asked to
        ``plan`` against the current model; planned actions are applied
        through the rewriter and the pipeline is re-traced before the
        next pass runs. The call-level arguments override the
        corresponding spec fields for this call only.
        """
        effective = (spec if spec is not None else self.spec).with_overrides(
            passes=passes,
            iterations=iterations,
            allocate_remaining=allocate_remaining,
        )
        resolved = resolve_passes(effective.passes)
        if memory is None:
            memory = MemoryBudget(
                effective.memory_bytes
                if effective.memory_bytes is not None
                else self.machine.memory_bytes
            )

        current = strip_caches(pipeline)
        decisions: List[str] = []
        model = self._model_for_spec(current, effective)
        ctx = PassContext(
            machine=self.machine,
            memory=memory,
            spec=effective,
            model=model,
        )
        baseline_throughput = model.observed_throughput

        telemetry: List[dict] = []
        clock = self.monotonic
        for iteration in range(effective.iterations):
            ctx.iteration = iteration
            for opt_pass in resolved:
                pass_name = getattr(
                    opt_pass, "name", type(opt_pass).__name__
                )
                before = ctx.model.observed_throughput
                lp_before = ctx.lp
                start = clock()
                actions = opt_pass.plan(ctx)
                if actions:
                    for action in actions:
                        current = action.apply(current)
                        decisions.append(action.description)
                    # The rewrite changed the pipeline; re-trace so the
                    # next pass plans against up-to-date rates. (Tracing
                    # is deterministic, so skipping the re-trace when
                    # nothing changed is observably identical and much
                    # cheaper.) The re-trace wallclock is charged to the
                    # acting pass: its plan forced the measurement.
                    ctx.model = self._model_for_spec(current, effective)
                seconds = clock() - start
                after = ctx.model.observed_throughput
                # A pass "predicted" only if its plan produced a fresh
                # LP solution; carrying an older pass's prediction
                # forward would misattribute the forecast.
                predicted = (
                    ctx.lp.predicted_throughput
                    if ctx.lp is not None and ctx.lp is not lp_before
                    else math.nan
                )
                telemetry.append({
                    "pass": pass_name,
                    "iteration": iteration,
                    "seconds": seconds,
                    "actions": len(actions),
                    "throughput_before": before,
                    "throughput_after": after,
                    "realized_gain": (
                        after / before - 1.0 if before > 0 else math.nan
                    ),
                    "predicted_throughput": predicted,
                    "predicted_gain": (
                        predicted / before - 1.0
                        if before > 0 and not math.isnan(predicted)
                        else math.nan
                    ),
                })
                registry = global_registry()
                registry.histogram(
                    "repro_pass_seconds",
                    "Optimizer pass wallclock (plan + apply + re-trace)",
                ).labels(**{"pass": pass_name}).observe(seconds)
                registry.counter(
                    "repro_pass_actions_total",
                    "Rewrite actions emitted, by optimizer pass",
                ).labels(**{"pass": pass_name}).inc(len(actions))

        model = ctx.model
        predicted = ctx.lp.predicted_throughput if ctx.lp else math.nan
        return OptimizationResult(
            pipeline=current,
            model=model,
            lp=ctx.lp,
            cache=ctx.cache,
            decisions=decisions,
            predicted_throughput=predicted,
            baseline_throughput=baseline_throughput,
            caches=list(ctx.caches),
            pass_telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    def pick_best(
        self,
        variants: Dict[str, Pipeline],
        passes: Optional[Sequence] = None,
        iterations: int = 1,
    ) -> "PickBestResult":
        """Optimize each variant and pick the fastest (Figure 11).

        Steady-state cache effects are simulated (the optimizer's model
        treats cached subtrees as free), so cold-start does not penalize
        the cacheable variant — the property the paper calls out as hard
        for online tuners.

        Ties on observed throughput are broken by variant name
        (lexicographically smallest wins), so the winner is
        deterministic regardless of dict insertion order.
        """
        if not variants:
            raise ValueError("pick_best requires at least one variant")
        results: Dict[str, OptimizationResult] = {}
        scores: Dict[str, float] = {}
        for name, pipe in variants.items():
            res = self.optimize(pipe, passes=passes, iterations=iterations)
            results[name] = res
            scores[name] = res.model.observed_throughput
        best = max(scores.values())
        winner = min(name for name, score in scores.items() if score == best)
        return PickBestResult(winner=winner, results=results, scores=scores)


@dataclass
class PickBestResult:
    """Outcome of a multi-pipeline ``pick_best`` query."""

    winner: str
    results: Dict[str, OptimizationResult]
    scores: Dict[str, float]

    @property
    def pipeline(self) -> Pipeline:
        """The winning optimized pipeline."""
        return self.results[self.winner].pipeline


def optimize_pipeline(
    pipeline: Pipeline,
    machine: Machine,
    spec: Optional[OptimizeSpec] = None,
    **kwargs,
) -> OptimizationResult:
    """One-line pipeline optimization (the paper's headline API)."""
    return Plumber(machine, spec=spec).optimize(pipeline, **kwargs)


def optimize(
    machine: Machine,
    pick_best: Optional[Dict[str, Sequence]] = None,
    **plumber_kwargs,
):
    """The ``@optimize`` annotation (Figure 11).

    Decorates a loader function returning a :class:`Pipeline`. With
    ``pick_best={"param": [values...]}``, the loader is invoked once per
    value, each variant is traced and optimized, and the fastest
    optimized pipeline is returned.

    Example
    -------
    >>> @optimize(machine, pick_best={"cache": [True, False]})
    ... def loader_fn(data_dir, cache):
    ...     ...
    """

    def decorator(loader: Callable[..., Pipeline]):
        @functools.wraps(loader)
        def wrapped(*args, **kwargs) -> Pipeline:
            plumber = Plumber(machine, **plumber_kwargs)
            if not pick_best:
                return plumber.optimize(loader(*args, **kwargs)).pipeline
            if len(pick_best) != 1:
                raise ValueError("pick_best supports exactly one parameter")
            (param, values), = pick_best.items()
            variants = {
                f"{param}={v}": loader(*args, **{**kwargs, param: v})
                for v in values
            }
            return plumber.pick_best(variants).pipeline

        return wrapped

    return decorator
