"""Plumber's user-facing API (§4.1, §4.2, §B).

The paper's workflow, one line for the user:

1. **Trace** the pipeline under a benchmark workload (runtime flag).
2. **Analyze** — resource-accounted rates, dataset sizes, randomness.
3. **Optimize** — three logical passes (LP parallelism, prefetch
   insertion, cache insertion), run for two iterations by default "so
   that the estimated rates more closely reflect the final pipeline's
   performance".
4. **Rewrite** and hand back a pipeline with the same signature.

Entry points: :class:`Plumber` for step-by-step control,
:func:`optimize_pipeline` for the one-liner, and :func:`optimize` — the
``@optimize`` annotation with ``pick_best`` multi-pipeline queries
(Figure 11).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bottleneck import throughput_estimates
from repro.core.cache_planner import CacheDecision, plan_cache_greedy
from repro.core.lp import LPSolution, solve_allocation
from repro.core.prefetch_planner import plan_prefetch
from repro.core.rates import PipelineModel, build_model
from repro.core.rewriter import (
    insert_cache_after,
    insert_prefetch_after,
    set_parallelism,
    strip_caches,
)
from repro.core.trace import PipelineTrace
from repro.graph.datasets import Pipeline
from repro.host.machine import Machine
from repro.host.memory import MemoryBudget
from repro.runtime.backends import BackendSpec, resolve_backend
from repro.runtime.executor import RunConfig

#: default optimization passes, in order
DEFAULT_PASSES = ("parallelism", "prefetch", "cache")


@dataclass
class OptimizationResult:
    """The rewritten pipeline plus the decision log."""

    pipeline: Pipeline
    model: PipelineModel
    lp: Optional[LPSolution]
    cache: Optional[CacheDecision]
    decisions: List[str] = field(default_factory=list)
    predicted_throughput: float = math.nan
    #: observed throughput of the *unoptimized* pipeline's first trace
    baseline_throughput: float = math.nan

    @property
    def speedup(self) -> float:
        """Observed optimized / baseline throughput (nan if unknown)."""
        if not self.baseline_throughput > 0:
            return math.nan
        return self.model.observed_throughput / self.baseline_throughput

    @property
    def bottleneck(self) -> str:
        """The LP's binding constraint, or ``"none"`` without an LP pass."""
        return self.lp.bottleneck if self.lp is not None else "none"


class Plumber:
    """Tracing + rewriting front-end bound to one machine.

    A ``Plumber`` is re-entrant: it holds only immutable configuration,
    and every :meth:`optimize` call builds its own simulation, model, and
    (when not supplied) :class:`MemoryBudget`, so concurrent optimize
    calls never share mutable state. The batch optimization service
    (:mod:`repro.service`) runs optimize calls concurrently from worker
    pools (one short-lived ``Plumber`` per job payload).

    Parameters
    ----------
    machine:
        The (simulated) host to trace and optimize for.
    trace_duration / trace_warmup:
        Virtual seconds of tracing per iteration (the paper uses ~1
        minute of wallclock; in simulation a couple of virtual seconds
        reaches steady state).
    backend:
        Trace acquisition backend: ``"simulate"`` (default, the
        discrete-event tracer), ``"analytic"`` (closed-form fast path),
        or any :class:`~repro.runtime.backends.TraceBackend` object.
    event_budget:
        Cap on simulation events per trace when ``granularity`` is
        unset; the granularity auto-tuner coarsens chunks until the
        estimated event count fits. Both backends honour it — the
        analytic backend uses the resulting granularity for its I/O
        amortization and fill-latency terms, so the two backends model
        the same configuration.
    """

    def __init__(
        self,
        machine: Machine,
        trace_duration: float = 3.0,
        trace_warmup: float = 0.5,
        granularity: Optional[int] = None,
        backend: BackendSpec = "simulate",
        event_budget: Optional[int] = None,
    ) -> None:
        self.machine = machine
        self.trace_duration = trace_duration
        self.trace_warmup = trace_warmup
        self.granularity = granularity
        self.backend = resolve_backend(backend)
        self.event_budget = event_budget

    # ------------------------------------------------------------------
    def trace(self, pipeline: Pipeline, **overrides) -> PipelineTrace:
        """Collect a trace of the pipeline through the trace backend.

        ``backend=None`` (or omitted) inherits the instance's backend,
        matching the per-job override convention in the batch service.
        """
        backend = resolve_backend(
            overrides.pop("backend", None) or self.backend
        )
        config = RunConfig(
            duration=overrides.pop("duration", self.trace_duration),
            warmup=overrides.pop("warmup", self.trace_warmup),
            granularity=overrides.pop("granularity", self.granularity),
            event_budget=overrides.pop("event_budget", self.event_budget),
            trace=True,
            **overrides,
        )
        return backend.trace(pipeline, self.machine, config)

    def analyze(self, trace: PipelineTrace) -> PipelineModel:
        """Derive the operational model from a trace."""
        return build_model(trace)

    def model(self, pipeline: Pipeline) -> PipelineModel:
        """Trace + analyze in one call."""
        return self.analyze(self.trace(pipeline))

    # ------------------------------------------------------------------
    def optimize(
        self,
        pipeline: Pipeline,
        passes: Sequence[str] = DEFAULT_PASSES,
        iterations: int = 2,
        memory: Optional[MemoryBudget] = None,
        allocate_remaining: bool = True,
    ) -> OptimizationResult:
        """Run the optimizer passes and return the rewritten pipeline."""
        unknown = set(passes) - {"parallelism", "prefetch", "cache"}
        if unknown:
            raise ValueError(f"unknown optimizer passes: {sorted(unknown)}")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if memory is None:
            memory = MemoryBudget(self.machine.memory_bytes)

        current = strip_caches(pipeline)
        decisions: List[str] = []
        lp: Optional[LPSolution] = None
        cache: Optional[CacheDecision] = None
        model = self.model(current)
        baseline_throughput = model.observed_throughput

        for iteration in range(iterations):
            if "parallelism" in passes:
                lp = solve_allocation(model)
                plan = lp.parallelism_plan(
                    model, allocate_remaining=allocate_remaining
                )
                if plan:
                    current = set_parallelism(current, plan)
                    decisions.append(
                        f"iter{iteration}: parallelism {plan} "
                        f"(LP X*={lp.predicted_throughput:.2f})"
                    )
                model = self.model(current)

            if "prefetch" in passes:
                for decision in plan_prefetch(model):
                    current = insert_prefetch_after(
                        current,
                        decision.target,
                        decision.buffer_size,
                        name=f"prefetch_{decision.target}_i{iteration}",
                    )
                    decisions.append(
                        f"iter{iteration}: prefetch[{decision.buffer_size}] "
                        f"after {decision.target}"
                    )
                model = self.model(current)

            if "cache" in passes and cache is None:
                cache = plan_cache_greedy(model, memory)
                if cache is not None:
                    memory.reserve(f"cache_{cache.target}", cache.materialized_bytes)
                    current = insert_cache_after(current, cache.target)
                    decisions.append(f"iter{iteration}: {cache}")
                    model = self.model(current)

        predicted = lp.predicted_throughput if lp else math.nan
        return OptimizationResult(
            pipeline=current,
            model=model,
            lp=lp,
            cache=cache,
            decisions=decisions,
            predicted_throughput=predicted,
            baseline_throughput=baseline_throughput,
        )

    # ------------------------------------------------------------------
    def pick_best(
        self,
        variants: Dict[str, Pipeline],
        passes: Sequence[str] = DEFAULT_PASSES,
        iterations: int = 1,
    ) -> "PickBestResult":
        """Optimize each variant and pick the fastest (Figure 11).

        Steady-state cache effects are simulated (the optimizer's model
        treats cached subtrees as free), so cold-start does not penalize
        the cacheable variant — the property the paper calls out as hard
        for online tuners.
        """
        if not variants:
            raise ValueError("pick_best requires at least one variant")
        results: Dict[str, OptimizationResult] = {}
        scores: Dict[str, float] = {}
        for name, pipe in variants.items():
            res = self.optimize(pipe, passes=passes, iterations=iterations)
            results[name] = res
            scores[name] = res.model.observed_throughput
        winner = max(scores, key=scores.get)
        return PickBestResult(winner=winner, results=results, scores=scores)


@dataclass
class PickBestResult:
    """Outcome of a multi-pipeline ``pick_best`` query."""

    winner: str
    results: Dict[str, OptimizationResult]
    scores: Dict[str, float]

    @property
    def pipeline(self) -> Pipeline:
        """The winning optimized pipeline."""
        return self.results[self.winner].pipeline


def optimize_pipeline(
    pipeline: Pipeline,
    machine: Machine,
    **kwargs,
) -> OptimizationResult:
    """One-line pipeline optimization (the paper's headline API)."""
    return Plumber(machine).optimize(pipeline, **kwargs)


def optimize(
    machine: Machine,
    pick_best: Optional[Dict[str, Sequence]] = None,
    **plumber_kwargs,
):
    """The ``@optimize`` annotation (Figure 11).

    Decorates a loader function returning a :class:`Pipeline`. With
    ``pick_best={"param": [values...]}``, the loader is invoked once per
    value, each variant is traced and optimized, and the fastest
    optimized pipeline is returned.

    Example
    -------
    >>> @optimize(machine, pick_best={"cache": [True, False]})
    ... def loader_fn(data_dir, cache):
    ...     ...
    """

    def decorator(loader: Callable[..., Pipeline]):
        @functools.wraps(loader)
        def wrapped(*args, **kwargs) -> Pipeline:
            plumber = Plumber(machine, **plumber_kwargs)
            if not pick_best:
                return plumber.optimize(loader(*args, **kwargs)).pipeline
            if len(pick_best) != 1:
                raise ValueError("pick_best supports exactly one parameter")
            (param, values), = pick_best.items()
            variants = {
                f"{param}={v}": loader(*args, **{**kwargs, param: v})
                for v in values
            }
            return plumber.pick_best(variants).pipeline

        return wrapped

    return decorator
