"""Plumber itself: tracing, operational analysis, the LP, and rewriting."""

from repro.core.bottleneck import (
    BottleneckReport,
    SequentialTuner,
    local_estimate,
    rank_bottlenecks,
    throughput_estimates,
)
from repro.core.cache_planner import (
    CacheDecision,
    plan_cache_exhaustive,
    plan_cache_greedy,
)
from repro.core.disk_planner import (
    DiskCurve,
    benchmark_source_curve,
    fit_piecewise,
    io_bound_throughput,
)
from repro.core.lp import LPError, LPSolution, solve_allocation
from repro.core.passes import (
    Action,
    InsertCache,
    InsertPrefetch,
    OptimizerPass,
    PassContext,
    RemovePipelineNode,
    SetParallelism,
    available_passes,
    register_pass,
    resolve_pass,
    unregister_pass,
)
from repro.core.plumber import (
    OptimizationResult,
    PickBestResult,
    Plumber,
    optimize,
    optimize_pipeline,
)
from repro.core.spec import DEFAULT_PASSES, OptimizeSpec
from repro.core.prefetch_planner import PrefetchDecision, plan_prefetch
from repro.core.randomness import node_is_random, tainted_nodes, udf_is_random
from repro.core.rates import (
    NodeRates,
    PipelineModel,
    SourceSizeEstimate,
    build_model,
    estimate_source_size,
)
from repro.core.report import explain
from repro.core.rewriter import (
    RewriteError,
    get_parallelism,
    insert_cache_after,
    insert_prefetch_after,
    remove_node,
    set_parallelism,
    strip_caches,
)
from repro.core.trace import HostInfo, PipelineTrace

__all__ = [
    "Action",
    "BottleneckReport",
    "CacheDecision",
    "DEFAULT_PASSES",
    "DiskCurve",
    "InsertCache",
    "InsertPrefetch",
    "OptimizeSpec",
    "OptimizerPass",
    "PassContext",
    "RemovePipelineNode",
    "SetParallelism",
    "HostInfo",
    "LPError",
    "LPSolution",
    "NodeRates",
    "OptimizationResult",
    "PickBestResult",
    "PipelineModel",
    "PipelineTrace",
    "Plumber",
    "PrefetchDecision",
    "available_passes",
    "register_pass",
    "resolve_pass",
    "unregister_pass",
    "RewriteError",
    "SequentialTuner",
    "SourceSizeEstimate",
    "benchmark_source_curve",
    "build_model",
    "estimate_source_size",
    "explain",
    "fit_piecewise",
    "get_parallelism",
    "insert_cache_after",
    "insert_prefetch_after",
    "io_bound_throughput",
    "local_estimate",
    "node_is_random",
    "optimize",
    "optimize_pipeline",
    "plan_cache_exhaustive",
    "plan_cache_greedy",
    "plan_prefetch",
    "rank_bottlenecks",
    "remove_node",
    "set_parallelism",
    "solve_allocation",
    "strip_caches",
    "tainted_nodes",
    "throughput_estimates",
    "udf_is_random",
]
