"""Bottleneck ranking and the iterative sequential tuner (§5.1).

"Plumber iteratively (using 1 minute of tracing) picks the node to
optimize by ranking nodes by their parallelism-scaled rates."

Also provides the two throughput estimators plotted in Figure 7:

* the **local** estimate, which assumes all remaining cores go to the
  current bottleneck (and so cannot see past one bottleneck), and
* the **LP** estimate from :mod:`repro.core.lp`, which is bounded by
  resource usage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.lp import solve_allocation
from repro.core.rates import NodeRates, PipelineModel


@dataclass(frozen=True)
class BottleneckReport:
    """Ranked bottlenecks plus throughput estimates for one trace."""

    ranked: List[NodeRates]          # slowest (bottleneck) first
    observed_throughput: float
    local_estimate: float
    lp_estimate: float

    @property
    def bottleneck(self) -> Optional[NodeRates]:
        """The slowest node by parallelism-scaled rate."""
        return self.ranked[0] if self.ranked else None


def rank_bottlenecks(model: PipelineModel) -> List[NodeRates]:
    """Tunable CPU nodes sorted by parallelism-scaled rate, slowest
    first — the node Plumber would parallelize next."""
    nodes = model.tunable_cpu_nodes()
    return sorted(nodes, key=lambda r: r.scaled_rate)


def local_estimate(model: PipelineModel, cores: Optional[float] = None) -> float:
    """Estimated max rate if all free cores go to the current bottleneck.

    The Figure 7 "local" baseline: it cannot see past one bottleneck, so
    it oscillates as the bottleneck changes.
    """
    if cores is None:
        cores = float(model.trace.host.cores)
    ranked = rank_bottlenecks(model)
    if not ranked:
        return math.inf
    bottleneck = ranked[0]
    used = sum(r.parallelism for r in model.cpu_nodes())
    free = max(0.0, cores - used)
    boosted = (bottleneck.parallelism + free) * bottleneck.rate_per_core
    others = [r.scaled_rate for r in ranked[1:]]
    others.append(boosted)
    return min(others)


def throughput_estimates(model: PipelineModel) -> BottleneckReport:
    """All Figure 7 series for one trace: observed, local, and LP."""
    ranked = rank_bottlenecks(model)
    lp = solve_allocation(model)
    return BottleneckReport(
        ranked=ranked,
        observed_throughput=model.observed_throughput,
        local_estimate=local_estimate(model),
        lp_estimate=lp.predicted_throughput,
    )


class SequentialTuner:
    """The step-at-a-time tuner of §5.1: trace, rank, bump the
    bottleneck's parallelism by one, repeat.

    The tuner never exceeds the core budget in total allocated
    parallelism (each step adds one unit).
    """

    def __init__(self, model_builder, core_budget: Optional[int] = None) -> None:
        """``model_builder(pipeline) -> PipelineModel`` runs a short trace
        and derives rates (injected so tests can use analytic models)."""
        self._build = model_builder
        self.core_budget = core_budget
        self.history: List[str] = []

    def step(self, pipeline) -> tuple:
        """One optimization step. Returns ``(new_pipeline, model)``; the
        pipeline is unchanged when no tunable bottleneck remains."""
        from repro.core.rewriter import set_parallelism

        model = self._build(pipeline)
        ranked = rank_bottlenecks(model)
        if not ranked:
            self.history.append("<none>")
            return pipeline, model
        budget = self.core_budget or model.trace.host.cores
        total = sum(
            n.effective_parallelism for n in pipeline.tunables()
        )
        if total >= budget:
            self.history.append("<budget>")
            return pipeline, model
        target = ranked[0]
        self.history.append(target.name)
        plan = {target.name: target.parallelism + 1}
        return set_parallelism(pipeline, plan), model
