"""Graph rewriting (§B "Graph Rewrites").

The three mechanisms the paper lists:

1. get a node's performance parameter (parallelism, prefetch),
2. set a node's parallelism parameter,
3. insert a new node after a selected node (caching, prefetching).

All rewrites are functional: they clone the pipeline and return a new
one keyed by node name, leaving the input untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.graph.datasets import (
    CacheNode,
    DatasetNode,
    Pipeline,
    PrefetchNode,
)
from repro.graph.validate import validate_pipeline


class RewriteError(ValueError):
    """Raised when a rewrite targets a missing or invalid node."""


def get_parallelism(pipeline: Pipeline) -> Dict[str, int]:
    """Current parallelism of every tunable node."""
    return {n.name: n.effective_parallelism for n in pipeline.tunables()}


def set_parallelism(pipeline: Pipeline, plan: Dict[str, int]) -> Pipeline:
    """Return a clone with parallelism overridden per ``plan``."""
    clone = pipeline.clone()
    nodes = clone.nodes
    for name, value in plan.items():
        if name not in nodes:
            raise RewriteError(f"no node named {name!r} to set parallelism on")
        node = nodes[name]
        if not node.tunable:
            raise RewriteError(f"node {name!r} is not tunable")
        if value < 1:
            raise RewriteError(f"parallelism for {name!r} must be >= 1, got {value}")
        node.parallelism = int(value)
    validate_pipeline(clone)
    return clone


def insert_after(
    pipeline: Pipeline,
    target: str,
    factory: Callable[[DatasetNode], DatasetNode],
    validate: bool = True,
) -> Pipeline:
    """Insert ``factory(target_node)`` between ``target`` and its parent.

    If ``target`` is the root, the new node becomes the root.
    """
    clone = pipeline.clone()
    nodes = clone.nodes
    if target not in nodes:
        raise RewriteError(f"no node named {target!r} to insert after")
    node = nodes[target]
    new_node = factory(node)
    if new_node.name in nodes:
        raise RewriteError(f"new node name {new_node.name!r} already exists")
    parent = clone.parent_of(target)
    if parent is None:
        result = Pipeline(new_node, name=clone.name)
    else:
        parent.inputs = [
            new_node if c.name == target else c for c in parent.inputs
        ]
        result = Pipeline(clone.root, name=clone.name)
    if validate:
        validate_pipeline(result)
    return result


def insert_cache_after(
    pipeline: Pipeline,
    target: str,
    name: Optional[str] = None,
    storage: str = "memory",
) -> Pipeline:
    """Insert a :class:`CacheNode` directly above ``target``."""
    cache_name = name or f"cache_{target}"
    return insert_after(
        pipeline,
        target,
        lambda child: CacheNode(cache_name, child, storage=storage),
    )


def insert_prefetch_after(
    pipeline: Pipeline,
    target: str,
    buffer_size: int,
    name: Optional[str] = None,
) -> Pipeline:
    """Insert a :class:`PrefetchNode` directly above ``target``."""
    prefetch_name = name or f"prefetch_{target}"
    return insert_after(
        pipeline,
        target,
        lambda child: PrefetchNode(prefetch_name, child, buffer_size),
    )


def remove_node(pipeline: Pipeline, target: str) -> Pipeline:
    """Remove a single-input node, splicing its child into its parent."""
    clone = pipeline.clone()
    nodes = clone.nodes
    if target not in nodes:
        raise RewriteError(f"no node named {target!r} to remove")
    node = nodes[target]
    if len(node.inputs) != 1:
        raise RewriteError(f"cannot remove node {target!r} with "
                           f"{len(node.inputs)} inputs")
    child = node.inputs[0]
    parent = clone.parent_of(target)
    if parent is None:
        result = Pipeline(child, name=clone.name)
    else:
        parent.inputs = [child if c.name == target else c for c in parent.inputs]
        result = Pipeline(clone.root, name=clone.name)
    validate_pipeline(result)
    return result


def existing_cache(pipeline: Pipeline) -> Optional[str]:
    """Name of the pipeline's cache node, if one is present."""
    for node in pipeline.iter_nodes():
        if isinstance(node, CacheNode):
            return node.name
    return None


def strip_caches(pipeline: Pipeline) -> Pipeline:
    """Remove user-inserted caches (Plumber re-inserts its own, §B:
    "Plumber discards such performance-optimizations as suggestions and
    inserts them itself")."""
    result = pipeline
    while True:
        name = existing_cache(result)
        if name is None:
            return result
        result = remove_node(result, name)
