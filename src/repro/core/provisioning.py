"""Resource provisioning for a target throughput (§4.1 "Extensions").

The paper lists as future work "extending Plumber to perform optimal
resource provisioning for matching a target throughput (e.g., to
minimize cost)". This module implements that inverse problem on top of
the same resource-accounted rates: given a traced model and a target
rate, compute the minimal core count, storage bandwidth (and hence read
parallelism), and cache memory required — the LP read backwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.cache_planner import plan_cache_greedy
from repro.core.rates import PipelineModel
from repro.host.memory import MemoryBudget


class ProvisioningError(ValueError):
    """Raised when no feasible provisioning exists for the target."""


@dataclass(frozen=True)
class ProvisioningPlan:
    """Minimal resources to sustain ``target_throughput``."""

    target_throughput: float       # minibatches / second
    cores: float                   # fractional cores required
    disk_bandwidth: float          # bytes/second required
    io_streams: float              # read parallelism to reach it
    cache_bytes: float             # memory if the cache is taken
    cache_target: Optional[str]    # where the cache would go
    feasible_sequential: bool      # no sequential stage caps below target

    @property
    def cores_rounded(self) -> int:
        """Whole cores to provision."""
        return int(math.ceil(self.cores - 1e-9))


def provision_for_throughput(
    model: PipelineModel,
    target_throughput: float,
    use_cache: bool = False,
) -> ProvisioningPlan:
    """Invert the LP: resources needed for ``target_throughput``.

    Parameters
    ----------
    use_cache:
        If True, assume the greedy cache is taken (its subtree costs
        vanish in steady state) and report the memory bill alongside the
        reduced CPU/disk requirements.
    """
    if target_throughput <= 0:
        raise ProvisioningError(
            f"target throughput must be > 0, got {target_throughput}"
        )

    cache = plan_cache_greedy(
        model, MemoryBudget(float("1e30"), headroom_fraction=0.0)
    ) if use_cache else None
    free: set = set()
    if cache is not None:
        node = model.pipeline.node(cache.target)
        stack = [node]
        while stack:
            n = stack.pop()
            free.add(n.name)
            stack.extend(n.inputs)

    # Cores: X * Σ 1/R_i over paying nodes (θ_i = X / R_i each).
    cores = 0.0
    feasible_sequential = True
    for rates in model.cpu_nodes():
        if rates.name in free:
            continue
        theta = target_throughput / rates.rate_per_core
        if rates.sequential and theta > 1.0 + 1e-9:
            feasible_sequential = False
        cores += theta

    # Disk: X * bytes-per-minibatch, unless a cache removes all reads.
    if cache is not None:
        bandwidth = 0.0
        streams = 0.0
    else:
        bandwidth = target_throughput * model.bytes_per_minibatch
        if not math.isfinite(bandwidth):
            bandwidth = 0.0
        disk = model.trace.host.disk
        if bandwidth > disk.max_bandwidth + 1e-6:
            raise ProvisioningError(
                f"target needs {bandwidth / 1e6:.0f} MB/s but the storage "
                f"tops out at {disk.max_bandwidth / 1e6:.0f} MB/s"
            )
        streams = _streams_for_bandwidth(disk, bandwidth)

    return ProvisioningPlan(
        target_throughput=target_throughput,
        cores=cores,
        disk_bandwidth=bandwidth,
        io_streams=streams,
        cache_bytes=cache.materialized_bytes if cache else 0.0,
        cache_target=cache.target if cache else None,
        feasible_sequential=feasible_sequential,
    )


def _streams_for_bandwidth(disk, bandwidth: float) -> float:
    """Smallest stream count whose curve bandwidth covers ``bandwidth``."""
    if bandwidth <= 0:
        return 0.0
    lo, hi = 0.0, float(disk.curve[-1][0])
    if disk.bandwidth(hi) < bandwidth:
        return hi
    for _ in range(60):  # bisection to sub-stream precision
        mid = (lo + hi) / 2
        if disk.bandwidth(mid) >= bandwidth:
            hi = mid
        else:
            lo = mid
    return hi
