"""The unified optimizer configuration: :class:`OptimizeSpec`.

Every knob that shapes one trace→analyze→optimize run — which passes to
run and for how many iterations, which trace backend acquires the
counters, the trace window, chunk granularity, the event budget, and the
memory ceiling for cache planning — lives in one frozen dataclass. A
spec is constructed once and flows unchanged through
:class:`~repro.core.plumber.Plumber`, the batch service
(:class:`repro.service.BatchOptimizer` / ``OptimizationJob.spec``), and
the fleet generator (``FleetConfig.optimize_spec``), replacing the loose
per-layer keyword arguments those layers used to re-declare.

Because the spec is the *whole* optimizer configuration, it is also the
optimizer's contribution to cache identity: :meth:`OptimizeSpec.cache_token`
renders it as a canonical JSON-compatible mapping, and the service's
result-cache key is ``hash(signature, machine fingerprint, cache_token)``
— two jobs share a cache entry iff nothing that could change the result
differs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

#: default optimization passes, in order (the paper's three logical
#: passes; resolved through the registry in :mod:`repro.core.passes`)
DEFAULT_PASSES = ("parallelism", "prefetch", "cache")

#: Version of the persisted result-store schema (the entry layout
#: :mod:`repro.service.store` writes to disk *and* the worker result
#: mapping it wraps). It is part of :meth:`OptimizeSpec.cache_token`, so
#: bumping it invalidates every existing cache key at once — a disk
#: store populated by an older schema can never serve an entry whose
#: layout this code no longer understands.
STORE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class OptimizeSpec:
    """One optimization run's full configuration.

    Parameters
    ----------
    passes:
        Optimizer passes, in order. Entries are registry names
        (strings) or :class:`~repro.core.passes.OptimizerPass` objects;
        the batch service requires names (specs travel to worker
        processes as JSON).
    iterations:
        Pass-pipeline iterations (the paper runs two "so that the
        estimated rates more closely reflect the final pipeline's
        performance").
    backend:
        Trace acquisition backend: a registered name (``"simulate"``,
        ``"analytic"``, ``"adaptive"``) or a backend object. The service
        requires a name for the same serialization reason as passes.
    granularity / event_budget:
        Chunk size per source request, or (when unset) the event budget
        the granularity auto-tuner targets.
    trace_duration / trace_warmup:
        Virtual seconds of tracing per iteration and the warmup window
        trimmed from measurements.
    memory_bytes:
        Ceiling for the cache planner's :class:`~repro.host.memory.
        MemoryBudget` (``None`` = the traced machine's memory).
    allocate_remaining:
        Whether the parallelism pass pushes leftover cores onto the
        bottleneck node (§5.4 behaviour).
    sim_engine:
        Simulation engine for simulate-backend traces: ``"vectorized"``
        (default) or ``"reference"``. The engines emit byte-identical
        traces (the golden corpus enforces it), so this is a
        speed/auditability knob, not a fidelity one.
    """

    passes: Tuple = DEFAULT_PASSES
    iterations: int = 2
    backend: object = "simulate"
    granularity: Optional[int] = None
    event_budget: Optional[int] = None
    trace_duration: float = 3.0
    trace_warmup: float = 0.5
    memory_bytes: Optional[float] = None
    allocate_remaining: bool = True
    sim_engine: str = "vectorized"

    def __post_init__(self) -> None:
        object.__setattr__(self, "passes", tuple(self.passes))
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.granularity is not None and self.granularity < 1:
            raise ValueError(
                f"granularity must be >= 1, got {self.granularity}"
            )
        if self.event_budget is not None and self.event_budget < 1:
            raise ValueError("event_budget must be >= 1")
        if self.trace_duration <= 0:
            raise ValueError("trace_duration must be > 0")
        if not 0 <= self.trace_warmup < self.trace_duration:
            raise ValueError(
                "trace_warmup must be in [0, trace_duration)"
            )
        if self.memory_bytes is not None and not self.memory_bytes > 0:
            raise ValueError("memory_bytes must be > 0")
        if self.sim_engine not in ("vectorized", "reference"):
            raise ValueError(
                f"sim_engine must be 'vectorized' or 'reference', "
                f"got {self.sim_engine!r}"
            )

    # ------------------------------------------------------------------
    def replace(self, **changes) -> "OptimizeSpec":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def with_overrides(self, **overrides) -> "OptimizeSpec":
        """A copy with every non-None override applied.

        The one fold used wherever a layer accepts loose keyword
        arguments on top of a spec (``Plumber(machine, backend=...)``,
        per-job granularity/backend shims, fleet stamping): ``None``
        means "inherit", anything else replaces the field.
        """
        changes = {k: v for k, v in overrides.items() if v is not None}
        return self.replace(**changes) if changes else self

    @property
    def backend_name(self) -> str:
        """The backend's registry name (objects report their ``name``)."""
        if isinstance(self.backend, str):
            return self.backend
        return getattr(self.backend, "name", type(self.backend).__name__)

    def _named_parts(self, what: str) -> Tuple[Tuple[str, ...], str]:
        """Pass names + backend name, or raise when either is an object
        (object-valued specs have no stable serialized identity)."""
        names = []
        for p in self.passes:
            if not isinstance(p, str):
                raise TypeError(
                    f"a spec with pass objects has no {what}; register "
                    "the pass and refer to it by name"
                )
            names.append(p)
        if not isinstance(self.backend, str):
            raise TypeError(
                f"a spec with a backend object has no {what}; register "
                "the backend and refer to it by name"
            )
        return tuple(names), self.backend

    # ------------------------------------------------------------------
    def cache_token(self) -> dict:
        """Canonical JSON-compatible identity for result caching.

        Two specs produce the same token iff every field that can change
        an optimization result is equal — the batch service hashes this
        (with the pipeline signature and machine fingerprint) into its
        result-cache key.
        """
        passes, backend = self._named_parts("cache token")
        return {
            "schema": STORE_SCHEMA_VERSION,
            "passes": list(passes),
            "iterations": self.iterations,
            "backend": backend,
            "granularity": self.granularity,
            "event_budget": self.event_budget,
            "trace_duration": self.trace_duration,
            "trace_warmup": self.trace_warmup,
            "memory_bytes": self.memory_bytes,
            "allocate_remaining": self.allocate_remaining,
            "sim_engine": self.sim_engine,
        }

    def to_dict(self) -> dict:
        """Serialize for the worker-process hop (JSON-compatible)."""
        return self.cache_token()

    @classmethod
    def from_dict(cls, data: dict) -> "OptimizeSpec":
        """Rebuild a spec serialized with :meth:`to_dict`."""
        return cls(
            passes=tuple(data["passes"]),
            iterations=data["iterations"],
            backend=data["backend"],
            granularity=data["granularity"],
            event_budget=data["event_budget"],
            trace_duration=data["trace_duration"],
            trace_warmup=data["trace_warmup"],
            memory_bytes=data["memory_bytes"],
            allocate_remaining=data["allocate_remaining"],
            # absent in payloads serialized before the engine knob existed
            sim_engine=data.get("sim_engine", "vectorized"),
        )
