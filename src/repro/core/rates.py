"""Resource-accounted rates (§4.4 and Appendix A).

From one :class:`~repro.core.trace.PipelineTrace` this module derives:

1. **Work completion rates** — observed visit ratios ``V_i = C_i / C_0``
   and resource-accounted rates ``R_i = (C_i / cpu_i) / V_i``
   (minibatches per second per core), the inputs to the LP.
2. **Disk accounting** — bytes read per minibatch at each source, which
   joined with a bandwidth figure gives the I/O throughput bound.
3. **Cache amplification rates** — cardinality ``n_i`` and byte-ratio
   ``b_i`` propagated source→root, giving the materialized size of every
   cache candidate; source sizes come from the (possibly subsampled)
   observed file sizes, rescaled by ``m/n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.randomness import tainted_nodes
from repro.core.trace import PipelineTrace
from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    Pipeline,
    RepeatNode,
    TakeNode,
    ZipNode,
)


@dataclass
class SourceSizeEstimate:
    """Subsampled estimate of one source dataset's size (§A)."""

    source: str
    observed_files: int
    total_files: int
    observed_bytes: float
    estimated_bytes: float
    estimated_records: float

    @property
    def sample_fraction(self) -> float:
        """Fraction of files observed during tracing."""
        if self.total_files == 0:
            return 0.0
        return self.observed_files / self.total_files


@dataclass
class NodeRates:
    """Per-node derived quantities."""

    name: str
    kind: str
    parallelism: int
    sequential: bool
    visit_ratio: float           # V_i: node completions per minibatch
    rate_per_core: float         # R_i: minibatches / second / core
    effective_rate_per_core: float  # like R_i but accounting I/O wait
    local_rate: float            # r_i: node elements / cpu-second
    cpu_core_seconds: float
    elements_produced: float
    bytes_per_element: float     # b_i
    cardinality: float           # n_i (inf if repeated/random upstream)
    materialized_bytes: float    # n_i * b_i
    cacheable: bool
    udf_internal_parallelism: float = 1.0

    @property
    def scaled_rate(self) -> float:
        """Parallelism-scaled aggregate rate p_i * R_i (the bottleneck
        ranking statistic of §5.1), using the I/O-accounted rate so that
        starved interleave streams rank as bottlenecks too (§4.4's
        "resource accounted" includes disk time)."""
        return self.parallelism * self.effective_rate_per_core


@dataclass
class PipelineModel:
    """Everything the optimizer needs, derived from one trace."""

    pipeline: Pipeline
    trace: PipelineTrace
    rates: Dict[str, NodeRates]
    source_estimates: Dict[str, SourceSizeEstimate]
    bytes_per_minibatch: float          # disk I/O per root element
    observed_throughput: float
    tainted: Set[str] = field(default_factory=set)

    def node(self, name: str) -> NodeRates:
        """Rates for one node."""
        return self.rates[name]

    def cpu_nodes(self) -> List[NodeRates]:
        """Nodes that consumed CPU during tracing (LP variables)."""
        return [
            r for r in self.rates.values()
            if r.cpu_core_seconds > 0 and math.isfinite(r.rate_per_core)
        ]

    def tunable_cpu_nodes(self) -> List[NodeRates]:
        """CPU-consuming nodes whose parallelism can be rewritten."""
        tunable_names = {n.name for n in self.pipeline.tunables()}
        return [r for r in self.cpu_nodes() if r.name in tunable_names]

    def cache_candidates(self) -> List[NodeRates]:
        """Cacheable nodes ordered closest-to-root first (§4.3 Memory)."""
        order = [n.name for n in self.pipeline.topological_order()]
        candidates = [
            self.rates[name]
            for name in reversed(order)
            if self.rates[name].cacheable
        ]
        return candidates


def build_model(trace: PipelineTrace) -> PipelineModel:
    """Derive the full operational model from a trace."""
    pipeline = trace.pipeline()
    root_name = pipeline.root.name
    stats = trace.stats
    root_completions = stats[root_name].elements_produced
    duration = max(trace.measured_seconds, 1e-12)

    tainted = tainted_nodes(pipeline)
    source_estimates = {
        s.name: estimate_source_size(s, stats[s.name]) for s in pipeline.sources()
    }
    cardinalities = _propagate_cardinality(pipeline, stats, source_estimates)

    rates: Dict[str, NodeRates] = {}
    total_read = 0.0
    for node in pipeline.topological_order():
        st = stats[node.name]
        total_read += st.bytes_read
        if root_completions > 0:
            visit = st.elements_produced / root_completions
        else:
            visit = math.inf
        local = st.elements_per_cpu_second
        if st.cpu_core_seconds > 0 and visit > 0 and math.isfinite(visit):
            rate_per_core = local / visit
        else:
            rate_per_core = math.inf
        # Thread busy time: CPU + storage waits + per-Next dispatch
        # overhead. This is what bounds a worker pool's completion rate,
        # so the *ranking* statistic uses it; the LP's R_i stays pure
        # CPU-time (which is exactly why its NLP predictions overshoot,
        # Fig. 9).
        busy_seconds = (
            st.cpu_core_seconds + st.io_seconds + st.overhead_seconds
        )
        if busy_seconds > 0 and visit > 0 and math.isfinite(visit):
            effective_rate = st.elements_produced / busy_seconds / visit
        else:
            effective_rate = rate_per_core
        n_i = cardinalities[node.name]
        b_i = st.bytes_per_element
        cacheable = (
            node.name not in tainted
            and math.isfinite(n_i)
            and n_i > 0
            and not isinstance(node, RepeatNode)
            and node.kind not in ("shuffle_and_repeat", "prefetch")
            and not isinstance(node, CacheNode)
        )
        rates[node.name] = NodeRates(
            name=node.name,
            kind=node.kind,
            parallelism=node.effective_parallelism,
            sequential=node.sequential,
            visit_ratio=visit,
            rate_per_core=rate_per_core,
            effective_rate_per_core=effective_rate,
            local_rate=local,
            cpu_core_seconds=st.cpu_core_seconds,
            elements_produced=st.elements_produced,
            bytes_per_element=b_i,
            cardinality=n_i,
            materialized_bytes=(n_i * b_i) if math.isfinite(n_i) else math.inf,
            cacheable=cacheable,
            udf_internal_parallelism=st.udf_internal_parallelism,
        )

    bytes_per_minibatch = (
        total_read / root_completions if root_completions > 0 else math.inf
    )

    return PipelineModel(
        pipeline=pipeline,
        trace=trace,
        rates=rates,
        source_estimates=source_estimates,
        bytes_per_minibatch=bytes_per_minibatch,
        observed_throughput=trace.root_throughput,
        tainted=tainted,
    )


def estimate_source_size(
    source: InterleaveSourceNode, stats
) -> SourceSizeEstimate:
    """Rescale observed file sizes by ``m/n`` to estimate dataset size.

    "If we have n of m samples, we can simply rescale the subsampled
    size by m/n" (§A). Records are estimated from the observed mean
    record size.
    """
    total_files = source.catalog.num_files
    observed_files = min(stats.files_seen_count, total_files)
    observed_bytes = stats.files_seen_bytes
    if observed_files > 0:
        # Each file may be visited multiple times under repeat; average
        # per observation, then scale to the catalog.
        per_file = observed_bytes / stats.files_seen_count
        estimated_bytes = per_file * total_files
    else:
        estimated_bytes = 0.0
    bytes_per_record = stats.bytes_per_element
    estimated_records = (
        estimated_bytes / bytes_per_record if bytes_per_record > 0 else 0.0
    )
    return SourceSizeEstimate(
        source=source.name,
        observed_files=observed_files,
        total_files=total_files,
        observed_bytes=observed_bytes,
        estimated_bytes=estimated_bytes,
        estimated_records=estimated_records,
    )


def _propagate_cardinality(
    pipeline: Pipeline,
    stats,
    source_estimates: Dict[str, SourceSizeEstimate],
) -> Dict[str, float]:
    """n_i propagation source→root using observed local ratios (§A).

    ``n_j = r_j * n_i`` where ``r_j`` is the observed input→output
    completion ratio; repeat and shuffle_and_repeat make cardinality
    infinite (uncacheable above them).
    """
    out: Dict[str, float] = {}
    for node in pipeline.topological_order():
        if isinstance(node, InterleaveSourceNode):
            out[node.name] = source_estimates[node.name].estimated_records
            continue
        if isinstance(node, ZipNode):
            # Lockstep: the stream ends with the shortest branch.
            out[node.name] = min(out[c.name] for c in node.inputs)
            continue
        if isinstance(node, InterleaveDatasetsNode):
            # The mix ends when branch i runs dry after n_i / w_i outputs.
            out[node.name] = min(
                out[c.name] / w
                for w, c in zip(node.weights, node.inputs)
            )
            continue
        child = node.inputs[0]
        n_child = out[child.name]
        if isinstance(node, RepeatNode):
            if node.count is None:
                out[node.name] = math.inf if n_child > 0 else 0.0
            else:
                out[node.name] = n_child * node.count
            continue
        if node.kind == "shuffle_and_repeat":
            out[node.name] = math.inf if n_child > 0 else 0.0
            continue
        if isinstance(node, TakeNode):
            out[node.name] = min(n_child, float(node.count))
            continue
        st = stats[node.name]
        child_st = stats[child.name]
        if child_st.elements_produced > 0:
            local_ratio = st.elements_produced / child_st.elements_produced
        else:
            local_ratio = node.elements_ratio()
        out[node.name] = n_child * local_ratio
    return out
