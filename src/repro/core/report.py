"""Human-readable bottleneck reports — Plumber's ``EXPLAIN`` equivalent.

"Plumber's tracer quantifies the performance of individual operators,
focusing the practitioner's attention on the most underperforming subset
of the data pipeline, while also quantifying the resource utilization
of the pipeline" (§1).
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.core.bottleneck import throughput_estimates
from repro.core.rates import PipelineModel


def _fmt_rate(value: float) -> str:
    if math.isinf(value):
        return "inf"
    return f"{value:.3g}"


def _fmt_bytes(value: float) -> str:
    if math.isinf(value):
        return "inf (random/repeated)"
    if value >= 1e9:
        return f"{value / 1e9:.1f} GB"
    if value >= 1e6:
        return f"{value / 1e6:.1f} MB"
    return f"{value / 1e3:.1f} KB"


def explain(model: PipelineModel) -> str:
    """Render a full bottleneck report for one traced pipeline."""
    report = throughput_estimates(model)
    rows = []
    bottleneck_name = report.bottleneck.name if report.bottleneck else None
    for node in model.pipeline.topological_order():
        rates = model.rates[node.name]
        marker = "<-- bottleneck" if node.name == bottleneck_name else ""
        rows.append(
            (
                rates.name,
                rates.kind,
                rates.parallelism,
                _fmt_rate(rates.visit_ratio),
                _fmt_rate(rates.rate_per_core),
                _fmt_rate(rates.scaled_rate),
                _fmt_bytes(rates.materialized_bytes),
                "yes" if rates.cacheable else "no",
                marker,
            )
        )
    table = format_table(
        (
            "node", "kind", "par", "visit V_i", "R_i mb/s/core",
            "p*R_i", "materialized", "cacheable", "",
        ),
        rows,
    )
    lines = [
        f"pipeline: {model.pipeline.name}",
        f"observed throughput: {model.observed_throughput:.3f} minibatches/s",
        f"LP max-rate estimate: {_fmt_rate(report.lp_estimate)} minibatches/s",
        f"local max-rate estimate: {_fmt_rate(report.local_estimate)} minibatches/s",
        f"disk I/O: {model.bytes_per_minibatch / 1e6:.2f} MB per minibatch",
        "",
        table,
    ]
    for est in model.source_estimates.values():
        lines.append(
            f"source {est.source!r}: ~{est.estimated_bytes / 1e9:.2f} GB "
            f"estimated from {est.observed_files}/{est.total_files} files "
            f"({100 * est.sample_fraction:.1f}% sample)"
        )
    return "\n".join(lines)
