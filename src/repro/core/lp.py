"""The Plumber linear program (§4.3).

Maximize ``X = min_i θ_i R_i`` subject to ``Σ θ_i ≤ n_cores``,
``0 ≤ θ_i``, ``θ_i ≤ 1`` for sequential Datasets, plus disk-bandwidth
constraints ``X * bytes_per_minibatch ≤ bw(θ_src)`` where ``bw`` is a
concave piecewise-linear parallelism→bandwidth curve (each affine
segment becomes one LP row).

Solved with ``scipy.optimize.linprog`` (HiGHS). Unlike AUTOTUNE's
latency model, the optimum here is bounded by resource usage — the
property Figure 7 demonstrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.rates import PipelineModel
from repro.graph.datasets import InterleaveSourceNode


class LPError(RuntimeError):
    """Raised when the LP is infeasible or the solver fails."""


@dataclass
class LPSolution:
    """Optimal fractional core allocation and the implied throughput."""

    predicted_throughput: float          # X*, minibatches/second
    theta: Dict[str, float]              # fractional cores per node
    io_streams: Dict[str, float]         # source stream parallelism
    bottleneck: str                      # binding constraint at optimum
    cores: float
    status: str = "optimal"

    def parallelism_plan(
        self,
        model: PipelineModel,
        allocate_remaining: bool = True,
    ) -> Dict[str, int]:
        """Integer parallelism assignment from the fractional optimum.

        Non-bottleneck tunables get ``ceil(θ_i)`` (at least 1); when
        ``allocate_remaining`` is set, leftover cores are pushed onto the
        bottleneck node — the behaviour §5.4 describes ("Plumber
        allocates 95 parallelism to the former, leaving only 1 for the
        remaining MapDataset").
        """
        tunables = {n.name: n for n in model.pipeline.tunables()}
        plan: Dict[str, int] = {}
        for name, th in self.theta.items():
            if name not in tunables:
                continue
            plan[name] = max(1, math.ceil(th - 1e-9))
        for name, streams in self.io_streams.items():
            if name in tunables:
                plan[name] = max(plan.get(name, 1), max(1, math.ceil(streams - 1e-9)))
        if allocate_remaining and self.bottleneck in plan:
            used = sum(plan.values())
            # Sequential/non-tunable CPU nodes (shuffle, filter, ...) hold
            # cores too (θ ≤ 1 each); ignoring them could grant the
            # bottleneck more cores than the machine has.
            seq_used = sum(
                th for name, th in self.theta.items() if name not in tunables
            )
            leftover = int(math.floor(self.cores - used - seq_used + 1e-9))
            if leftover > 0:
                plan[self.bottleneck] += leftover
        return plan


def solve_allocation(
    model: PipelineModel,
    cores: Optional[float] = None,
    disk_segments: Optional[Sequence[Tuple[float, float]]] = None,
    max_io_streams: float = 256.0,
) -> LPSolution:
    """Solve the CPU+disk allocation LP for ``model``.

    Parameters
    ----------
    cores:
        Core budget (defaults to the traced host's core count).
    disk_segments:
        Affine ``(slope, intercept)`` segments of the source
        parallelism→bandwidth curve; defaults to the traced host's disk
        spec. Ignored when the pipeline reads no bytes (fully cached).
    """
    host = model.trace.host
    if cores is None:
        cores = float(host.cores)
    if cores <= 0:
        raise LPError(f"core budget must be > 0, got {cores}")

    # Steady-state cache semantics (§B): a trace taken during the cache's
    # populate epoch still shows upstream CPU and disk traffic, but after
    # the first epoch the cached subtree is free. Model that directly.
    cached = _cached_subtree(model.pipeline)
    cpu_nodes = [r for r in model.cpu_nodes() if r.name not in cached]
    sources = [
        s for s in model.pipeline.sources()
        if model.trace.stats[s.name].bytes_read > 0 and s.name not in cached
    ]
    bpm = model.bytes_per_minibatch
    use_disk = bool(sources) and bpm > 0 and math.isfinite(bpm)
    if use_disk and disk_segments is None:
        disk_segments = host.disk.segments()

    # Variables: [X, θ_0..θ_{k-1}, s_0..s_{m-1}] (s = source streams).
    names = [r.name for r in cpu_nodes]
    k = len(names)
    src_names = [s.name for s in sources] if use_disk else []
    m = len(src_names)
    nvar = 1 + k + m

    if k == 0 and not use_disk:
        # Nothing consumes CPU or disk: the model cannot bound throughput.
        return LPSolution(
            predicted_throughput=math.inf,
            theta={},
            io_streams={},
            bottleneck="none",
            cores=cores,
            status="unbounded",
        )

    c = np.zeros(nvar)
    c[0] = -1.0  # maximize X
    # Tiny penalties break degeneracy: among all X-optimal allocations,
    # prefer the one using the fewest cores and I/O streams (otherwise
    # the solver may park stream variables at their upper bound).
    c[1 : 1 + k] = 1e-9
    c[1 + k :] = 1e-9

    a_ub: List[np.ndarray] = []
    b_ub: List[float] = []
    row_labels: List[str] = []

    # X - θ_i R_i <= 0 for every CPU node.
    for i, rates in enumerate(cpu_nodes):
        row = np.zeros(nvar)
        row[0] = 1.0
        row[1 + i] = -rates.rate_per_core
        a_ub.append(row)
        b_ub.append(0.0)
        row_labels.append(rates.name)

    # Σ θ_i <= cores.
    row = np.zeros(nvar)
    row[1 : 1 + k] = 1.0
    a_ub.append(row)
    b_ub.append(cores)
    row_labels.append("cpu")

    # Disk: X * bpm - slope * s_j <= intercept for each curve segment.
    if use_disk:
        for j in range(m):
            for slope, intercept in disk_segments:
                row = np.zeros(nvar)
                row[0] = bpm
                row[1 + k + j] = -slope
                a_ub.append(row)
                b_ub.append(intercept)
                row_labels.append("disk")

    bounds: List[Tuple[float, Optional[float]]] = [(0.0, None)]
    for rates in cpu_nodes:
        upper = 1.0 if rates.sequential else None
        bounds.append((0.0, upper))
    for _ in range(m):
        bounds.append((0.0, max_io_streams))

    result = linprog(
        c,
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise LPError(f"LP solve failed: {result.message}")

    x = result.x
    predicted = float(x[0])
    theta = {name: float(x[1 + i]) for i, name in enumerate(names)}
    io_streams = {name: float(x[1 + k + j]) for j, name in enumerate(src_names)}

    bottleneck = _binding_constraint(
        predicted, cpu_nodes, cores, use_disk, bpm,
        disk_segments if use_disk else (), src_names, max_io_streams,
    )
    return LPSolution(
        predicted_throughput=predicted,
        theta=theta,
        io_streams=io_streams,
        bottleneck=bottleneck,
        cores=cores,
    )


def _cached_subtree(pipeline) -> set:
    """Names of nodes strictly below any cache node (steady-state free).

    Thin seam over :meth:`Pipeline.below_cache_names` — kept as a module
    function so the cache-semantics ablation can stub it out.
    """
    return pipeline.below_cache_names()


def _binding_constraint(
    predicted: float,
    cpu_nodes,
    cores: float,
    use_disk: bool,
    bpm: float,
    disk_segments,
    src_names,
    max_io_streams: float,
    tol: float = 1e-4,
) -> str:
    """Identify which structural cap equals the LP optimum.

    For this LP the optimum is exactly
    ``min(cores / Σ(1/R_i),  min_seq R_i,  bw_max / bpm)``; we compute
    each cap and attribute the minimum. When the aggregate-CPU cap
    binds, the reported node is the dominant CPU consumer (largest
    1/R_i share), matching how Plumber surfaces bottlenecks.
    """
    caps: Dict[str, float] = {}
    inv_rate_sum = sum(
        1.0 / r.rate_per_core for r in cpu_nodes if r.rate_per_core > 0
    )
    if inv_rate_sum > 0:
        caps["cpu"] = cores / inv_rate_sum
    for r in cpu_nodes:
        if r.sequential and math.isfinite(r.rate_per_core):
            caps[f"seq:{r.name}"] = r.rate_per_core
    if use_disk and disk_segments:
        bw_max = min(
            (slope * max_io_streams + icept for slope, icept in disk_segments),
            default=math.inf,
        )
        for name in src_names:
            caps[f"disk:{name}"] = bw_max / bpm
    if not caps:
        return "unbounded"
    label = min(caps, key=caps.get)
    if caps[label] > predicted * (1 + 10 * tol):
        # Solver landed strictly below every structural cap (shouldn't
        # happen, but stay honest rather than mislabel).
        return "unbounded"
    if label == "cpu" and cpu_nodes:
        dominant = max(cpu_nodes, key=lambda r: 1.0 / max(r.rate_per_core, 1e-30))
        return dominant.name
    if label.startswith("seq:"):
        return label[len("seq:"):]
    return label
