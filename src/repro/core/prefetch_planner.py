"""Prefetch injection (§4.1 "Optimizer").

"Prefetching is a subsequent pass which injects prefetching proportional
to the idleness in the pipeline under a benchmark workload."

We inject a root prefetch (decoupling the consumer from the pipeline)
and a prefetch above every parallel stage that feeds a sequential one,
with buffer sizes proportional to observed idleness (1 - CPU
utilization) scaled by the stage's parallelism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.rates import PipelineModel
from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    MapNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
)


@dataclass(frozen=True)
class PrefetchDecision:
    """One prefetch buffer to insert."""

    target: str        # insert directly above this node
    buffer_size: int   # elements


def plan_prefetch(
    model: PipelineModel,
    max_buffer: int = 64,
    min_buffer: int = 2,
) -> List[PrefetchDecision]:
    """Prefetch injection plan proportional to pipeline idleness."""
    pipeline = model.pipeline
    idleness = max(0.0, 1.0 - model.trace.cpu_utilization)
    decisions: List[PrefetchDecision] = []

    existing = {
        n.inputs[0].name
        for n in pipeline.iter_nodes()
        if isinstance(n, PrefetchNode)
    }

    # Root prefetch: decouple the training step from the pipeline. The
    # buffer grows with idleness — an idle pipeline benefits from deeper
    # buffering to ride out bursts.
    root_target = _root_insert_point(pipeline)
    if root_target is not None and root_target not in existing:
        buffer = int(min(max_buffer, max(min_buffer, round(2 + idleness * 8))))
        decisions.append(PrefetchDecision(root_target, buffer))

    # Stage prefetches: above each parallel stage, sized to its
    # parallelism so workers are never blocked on a full queue.
    for node in pipeline.topological_order():
        if not isinstance(node, (MapNode, BatchNode)):
            continue
        if node.effective_parallelism < 2:
            continue
        if node.name in existing or node.name == root_target:
            continue
        parent = pipeline.parent_of(node.name)
        if parent is None or isinstance(parent, PrefetchNode):
            continue
        buffer = int(
            min(max_buffer, max(min_buffer, math.ceil(node.effective_parallelism / 2)))
        )
        decisions.append(PrefetchDecision(node.name, buffer))
    return decisions


def _root_insert_point(pipeline: Pipeline) -> str | None:
    """Node above which the root prefetch goes: the root itself, unless
    the top of the pipeline is repeat/cache bookkeeping — then directly
    below it, so the buffer sits next to the consumer."""
    node = pipeline.root
    if isinstance(node, PrefetchNode):
        return None
    while isinstance(node, (RepeatNode, CacheNode)) and node.inputs:
        child = node.inputs[0]
        if isinstance(child, PrefetchNode):
            return None
        node = child
    return node.name
