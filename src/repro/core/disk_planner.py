"""Disk parallelism planning (§4.3 "Disk").

"Plumber goes a step further by benchmarking the entire empirical
parallelism vs. bandwidth curve for a data source (via rewriting). The
source parallelism results can then be fit with a piecewise linear curve
to be injected into the optimizer to determine a minimal parallelism to
hit max bandwidth."

:func:`benchmark_source_curve` rewrites the pipeline down to its source
(plus a sink) and sweeps the stream parallelism; :func:`fit_piecewise`
turns the measurements into concave affine segments the LP consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.datasets import InterleaveSourceNode, Pipeline
from repro.graph.builder import from_tfrecords
from repro.host.machine import Machine
from repro.runtime.executor import run_pipeline


@dataclass
class DiskCurve:
    """Empirical parallelism→bandwidth measurements plus the fit."""

    parallelisms: List[int]
    bandwidths: List[float]          # bytes/second achieved
    segments: List[Tuple[float, float]]  # concave affine (slope, intercept)

    @property
    def max_bandwidth(self) -> float:
        """Peak measured bandwidth."""
        return max(self.bandwidths) if self.bandwidths else 0.0

    def bandwidth_at(self, streams: float) -> float:
        """Fitted bandwidth at a given parallelism."""
        if not self.segments:
            return 0.0
        return min(s * streams + c for s, c in self.segments)

    def minimal_saturating_parallelism(self, fraction: float = 0.95) -> int:
        """Smallest measured parallelism achieving ``fraction`` of peak."""
        target = self.max_bandwidth * fraction
        for p, bw in zip(self.parallelisms, self.bandwidths):
            if bw >= target:
                return p
        return self.parallelisms[-1] if self.parallelisms else 1


def benchmark_source_curve(
    pipeline: Pipeline,
    machine: Machine,
    parallelisms: Optional[Sequence[int]] = None,
    duration: float = 1.5,
    warmup: float = 0.3,
) -> DiskCurve:
    """Measure achieved source bandwidth at several read parallelisms.

    Rewrites the pipeline into source-only form (the rewriting trick of
    §4.3) and runs a short benchmark per parallelism value.
    """
    sources = pipeline.sources()
    if not sources:
        raise ValueError("pipeline has no source to benchmark")
    source = sources[0]
    if parallelisms is None:
        parallelisms = _default_sweep(machine.cores)

    measured_p: List[int] = []
    measured_bw: List[float] = []
    for p in parallelisms:
        probe = (
            from_tfrecords(
                source.catalog,
                parallelism=int(p),
                read_cpu_seconds_per_record=source.read_cpu_seconds_per_record,
                name="probe_src",
            )
            .repeat(None, name="probe_repeat")
            .build("disk_probe")
        )
        result = run_pipeline(
            probe, machine, duration=duration, warmup=warmup, trace=False,
            granularity=8,
        )
        measured_p.append(int(p))
        measured_bw.append(result.disk_bytes / result.measured_seconds)

    return DiskCurve(
        parallelisms=measured_p,
        bandwidths=measured_bw,
        segments=fit_piecewise(measured_p, measured_bw),
    )


def fit_piecewise(
    parallelisms: Sequence[int], bandwidths: Sequence[float]
) -> List[Tuple[float, float]]:
    """Fit a concave piecewise-linear upper envelope to measurements.

    Returns affine ``(slope, intercept)`` segments whose pointwise
    minimum is the fitted curve — directly usable as LP constraints.
    The fit takes the concave majorant of the measured points (bandwidth
    curves are concave by §4.3's assumption).
    """
    if len(parallelisms) != len(bandwidths):
        raise ValueError("parallelisms and bandwidths must have equal length")
    if not parallelisms:
        return []
    pts = sorted(zip(parallelisms, bandwidths))
    xs = np.array([p[0] for p in pts], dtype=float)
    # Bandwidth curves are physically non-decreasing; measurement noise
    # can dip — take the running max so the majorant covers every point.
    ys = np.maximum.accumulate(np.array([p[1] for p in pts], dtype=float))

    # Upper concave hull, left to right (monotone chain on the upper side).
    hull: List[Tuple[float, float]] = []
    for x, y in zip(xs, ys):
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], (x, y)) >= 0:
            hull.pop()
        hull.append((x, y))

    segments: List[Tuple[float, float]] = []
    for (x1, y1), (x2, y2) in zip(hull, hull[1:]):
        if x2 == x1:
            continue
        slope = (y2 - y1) / (x2 - x1)
        segments.append((slope, y1 - slope * x1))
    # Flat tail beyond the last measurement.
    segments.append((0.0, hull[-1][1]))
    if len(hull) == 1:
        # A single point: only the flat segment applies.
        segments = [(0.0, hull[0][1])]
    return segments


def _cross(o: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _default_sweep(cores: int) -> List[int]:
    sweep = [1, 2, 4, 8, 16, 32, 64]
    return [p for p in sweep if p <= max(2, cores * 2)]


def io_bound_throughput(
    bytes_per_minibatch: float, bandwidth_bytes_per_second: float
) -> float:
    """The §5.2 bound: minibatches/second at a given I/O bandwidth.

    ResNet example: 128 records x ~110 KB → ~6.9 minibatches per
    100 MB/s of bandwidth.
    """
    if bytes_per_minibatch <= 0:
        return math.inf
    return bandwidth_bytes_per_second / bytes_per_minibatch
