"""First-class optimizer passes and their registry.

The paper describes the optimizer as "three logical passes run for two
iterations"; here each logical pass is an :class:`OptimizerPass` — an
object with a ``name`` and a ``plan(ctx)`` method that inspects the
current :class:`~repro.core.rates.PipelineModel` and returns a list of
:class:`Action` rewrites. The driver (:meth:`repro.core.plumber.Plumber.
optimize`) applies the actions through :mod:`repro.core.rewriter` and
re-traces, so a pass never mutates a pipeline itself — it only *plans*.

Passes are looked up by name through a module-level registry, which is
what keeps ``Plumber.optimize(pipeline, passes=("parallelism",
"prefetch", "cache"))`` working unchanged while letting users ship their
own passes:

>>> class DropShuffle:
...     name = "drop_shuffle"
...     def plan(self, ctx):
...         return [RemovePipelineNode(target="shuffle",
...                                    description="drop shuffle")]
>>> register_pass(DropShuffle())
>>> plumber.optimize(pipe, passes=("parallelism", "drop_shuffle"))

Built-in passes: ``parallelism`` (the LP), ``prefetch`` (idleness-
proportional buffer injection), ``cache`` (greedy closest-to-root
placement), and ``fuse`` (collapse stacks of adjacent prefetch buffers
into the deepest one — pure overhead removal, the kind of structural
cleanup the Action vocabulary makes possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.cache_planner import CacheDecision, plan_cache_per_branch
from repro.core.lp import LPSolution, solve_allocation
from repro.core.prefetch_planner import plan_prefetch
from repro.core.rates import PipelineModel
from repro.core.rewriter import (
    insert_cache_after,
    insert_prefetch_after,
    remove_node,
    set_parallelism,
)
from repro.core.spec import DEFAULT_PASSES, OptimizeSpec
from repro.graph.datasets import Pipeline, PrefetchNode
from repro.host.machine import Machine
from repro.host.memory import MemoryBudget

__all__ = [
    "Action",
    "DEFAULT_PASSES",
    "InsertCache",
    "InsertPrefetch",
    "OptimizerPass",
    "PassContext",
    "RemovePipelineNode",
    "SetParallelism",
    "available_passes",
    "register_pass",
    "resolve_pass",
    "resolve_passes",
    "unregister_pass",
]


# ----------------------------------------------------------------------
# Actions — the rewrite vocabulary passes plan in.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Action:
    """One planned rewrite; subclasses apply themselves via the rewriter.

    ``description`` is the human-readable decision-log line the driver
    records when the action is applied.
    """

    description: str

    def apply(self, pipeline: Pipeline) -> Pipeline:
        raise NotImplementedError


@dataclass(frozen=True)
class SetParallelism(Action):
    """Override per-node parallelism (mechanism 2 of §B)."""

    plan: Mapping[str, int] = field(default_factory=dict)

    def apply(self, pipeline: Pipeline) -> Pipeline:
        return set_parallelism(pipeline, dict(self.plan))


@dataclass(frozen=True)
class InsertPrefetch(Action):
    """Insert a prefetch buffer above ``target`` (mechanism 3 of §B)."""

    target: str = ""
    buffer_size: int = 2
    name: Optional[str] = None

    def apply(self, pipeline: Pipeline) -> Pipeline:
        return insert_prefetch_after(
            pipeline, self.target, self.buffer_size, name=self.name
        )


@dataclass(frozen=True)
class InsertCache(Action):
    """Insert a cache above ``target`` (mechanism 3 of §B)."""

    target: str = ""
    name: Optional[str] = None
    storage: str = "memory"

    def apply(self, pipeline: Pipeline) -> Pipeline:
        return insert_cache_after(
            pipeline, self.target, name=self.name, storage=self.storage
        )


@dataclass(frozen=True)
class RemovePipelineNode(Action):
    """Splice a single-input node out of the pipeline."""

    target: str = ""

    def apply(self, pipeline: Pipeline) -> Pipeline:
        return remove_node(pipeline, self.target)


# ----------------------------------------------------------------------
# The pass protocol and its planning context.
# ----------------------------------------------------------------------
@dataclass
class PassContext:
    """Everything a pass may read (and the driver state it may update).

    ``model`` always reflects the *current* pipeline — the driver
    refreshes it after every pass that applied actions. ``lp`` and
    ``cache`` are cross-pass state slots: the parallelism pass records
    its latest LP solution, the cache pass its (single) cache decision,
    and the final :class:`~repro.core.plumber.OptimizationResult` reports
    both.
    """

    machine: Machine
    memory: MemoryBudget
    spec: OptimizeSpec
    model: Optional[PipelineModel] = None
    iteration: int = 0
    lp: Optional[LPSolution] = None
    cache: Optional[CacheDecision] = None
    #: all cache decisions this optimization planned (one per branch on
    #: multi-source DAGs); ``cache`` remains the closest-to-root one.
    caches: List[CacheDecision] = field(default_factory=list)

    @property
    def pipeline(self) -> Pipeline:
        """The current (already rewritten) pipeline."""
        return self.model.pipeline


@runtime_checkable
class OptimizerPass(Protocol):
    """Anything that can plan rewrites against a traced model."""

    name: str

    def plan(self, ctx: PassContext) -> List[Action]:
        """Return the rewrites to apply this iteration (possibly [])."""
        ...  # pragma: no cover - protocol body


# ----------------------------------------------------------------------
# Built-in passes.
# ----------------------------------------------------------------------
class ParallelismPass:
    """LP core allocation (§4.3), rounded to an integer plan."""

    name = "parallelism"

    def plan(self, ctx: PassContext) -> List[Action]:
        lp = solve_allocation(ctx.model)
        ctx.lp = lp
        plan = lp.parallelism_plan(
            ctx.model, allocate_remaining=ctx.spec.allocate_remaining
        )
        if not plan:
            return []
        return [
            SetParallelism(
                plan=plan,
                description=(
                    f"iter{ctx.iteration}: parallelism {plan} "
                    f"(LP X*={lp.predicted_throughput:.2f})"
                ),
            )
        ]


class PrefetchPass:
    """Idleness-proportional prefetch injection (§4.1)."""

    name = "prefetch"

    def plan(self, ctx: PassContext) -> List[Action]:
        return [
            InsertPrefetch(
                target=decision.target,
                buffer_size=decision.buffer_size,
                name=f"prefetch_{decision.target}_i{ctx.iteration}",
                description=(
                    f"iter{ctx.iteration}: "
                    f"prefetch[{decision.buffer_size}] "
                    f"after {decision.target}"
                ),
            )
            for decision in plan_prefetch(ctx.model)
        ]


class CachePass:
    """Greedy closest-to-root cache placement (§4.3, §4.4).

    Plans caches at most once per optimization (re-planning after they
    are inserted would stack caches). On a chain exactly one cache is
    placed; on a multi-source DAG whose merged stream is uncacheable,
    each branch may get its own cache from the shared memory budget.
    All decisions and their reservations are recorded on the context;
    ``ctx.cache`` stays the closest-to-root decision.
    """

    name = "cache"

    def plan(self, ctx: PassContext) -> List[Action]:
        if ctx.cache is not None or ctx.caches:
            return []
        caches = plan_cache_per_branch(ctx.model, ctx.memory)
        if not caches:
            return []
        ctx.caches = list(caches)
        ctx.cache = caches[0]
        actions: List[Action] = []
        for cache in caches:
            ctx.memory.reserve(
                f"cache_{cache.target}", cache.materialized_bytes
            )
            actions.append(
                InsertCache(
                    target=cache.target,
                    description=f"iter{ctx.iteration}: {cache}",
                )
            )
        return actions


class FusePrefetchPass:
    """Collapse adjacent prefetch buffers into the deepest one.

    Stacked prefetches (a hand-tuned pipeline's buffer directly feeding
    another buffer) add an iterator hop and queue hand-off per element
    without decoupling anything new. For every chain of directly
    adjacent :class:`~repro.graph.datasets.PrefetchNode`\\ s, keep the
    node with the largest buffer (so no capacity is lost) and splice out
    the rest.
    """

    name = "fuse"

    def plan(self, ctx: PassContext) -> List[Action]:
        pipeline = ctx.pipeline
        actions: List[Action] = []
        for node in pipeline.topological_order():
            if not isinstance(node, PrefetchNode):
                continue
            # Only start from the top of a chain, so each maximal chain
            # is planned exactly once.
            parent = pipeline.parent_of(node.name)
            if isinstance(parent, PrefetchNode):
                continue
            chain = [node]
            cursor = node
            while (
                len(cursor.inputs) == 1
                and isinstance(cursor.inputs[0], PrefetchNode)
            ):
                cursor = cursor.inputs[0]
                chain.append(cursor)
            if len(chain) < 2:
                continue
            keep = max(chain, key=lambda n: n.buffer_size)
            for extra in chain:
                if extra is keep:
                    continue
                actions.append(
                    RemovePipelineNode(
                        target=extra.name,
                        description=(
                            f"iter{ctx.iteration}: fuse "
                            f"prefetch {extra.name} into {keep.name} "
                            f"(buffer {keep.buffer_size})"
                        ),
                    )
                )
        return actions


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, OptimizerPass] = {}

#: what pass slots accept: a registered name or a pass object
PassSpec = Union[str, OptimizerPass]


def register_pass(pass_obj: OptimizerPass, replace: bool = False) -> None:
    """Register a pass under its ``name``.

    Re-registering an existing name raises unless ``replace=True`` —
    silently shadowing a built-in pass is almost always a bug.
    """
    name = getattr(pass_obj, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError(
            "an optimizer pass must expose a non-empty string `name`"
        )
    if not callable(getattr(pass_obj, "plan", None)):
        raise TypeError(f"pass {name!r} must define plan(ctx)")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"optimizer pass {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[name] = pass_obj


def unregister_pass(name: str) -> None:
    """Remove a registered pass (KeyError if absent)."""
    del _REGISTRY[name]


def available_passes() -> Tuple[str, ...]:
    """Registered pass names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_pass(spec: PassSpec) -> OptimizerPass:
    """Turn a pass name (or pass object) into an :class:`OptimizerPass`."""
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]
        except KeyError:
            raise ValueError(
                f"unknown optimizer passes: [{spec!r}]; "
                f"available: {list(available_passes())}"
            ) from None
    if callable(getattr(spec, "plan", None)) and hasattr(spec, "name"):
        return spec
    raise TypeError(
        f"pass must be a name or OptimizerPass, got {type(spec).__name__}"
    )


def resolve_passes(specs: Sequence[PassSpec]) -> List[OptimizerPass]:
    """Resolve a pass list, reporting *all* unknown names at once."""
    unknown = sorted(
        {s for s in specs if isinstance(s, str) and s not in _REGISTRY}
    )
    if unknown:
        raise ValueError(
            f"unknown optimizer passes: {unknown}; "
            f"available: {list(available_passes())}"
        )
    return [resolve_pass(s) for s in specs]


for _builtin in (ParallelismPass(), PrefetchPass(), CachePass(),
                 FusePrefetchPass()):
    register_pass(_builtin)
