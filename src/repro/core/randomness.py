"""Random-UDF detection for cache correctness (§B.1).

A function ``f`` is random if it accesses a random seed ``s`` directly
(``f → s``) or transitively through any function it calls
(``f →+ s``). If ``f →+ s`` holds, neither ``f``'s output nor anything
downstream of it may be cached: a randomized stream has effectively
infinite cardinality.
"""

from __future__ import annotations

from typing import Set

from repro.graph.datasets import DatasetNode, Pipeline
from repro.graph.udf import UserFunction


def udf_is_random(udf: UserFunction) -> bool:
    """Transitive closure ``f →+ s`` over the UDF call graph."""
    seen: Set[int] = set()
    stack = [udf]
    while stack:
        fn = stack.pop()
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        if fn.accesses_seed:
            return True
        stack.extend(fn.calls)
    return False


def node_is_random(node: DatasetNode) -> bool:
    """Whether a node applies a (transitively) random UDF.

    Shuffle nodes sample a seed but reorder rather than transform
    elements, so the *set* of elements is cacheable below them; they are
    therefore not treated as randomizing for cache purposes (matching
    tf.data, where ``cache()`` below ``shuffle()`` is the recommended
    pattern).
    """
    udf = node.udf
    return udf is not None and udf_is_random(udf)


def tainted_nodes(pipeline: Pipeline) -> Set[str]:
    """Names of nodes at-or-above a random UDF (uncacheable outputs).

    "If f →+ s is true, then we cannot cache f or any operations
    following it" (§B.1).
    """
    tainted: Set[str] = set()

    def visit(node: DatasetNode) -> bool:
        # Materialize before any(): lazy short-circuiting would skip the
        # remaining branches of a merge node, leaving their random UDFs
        # untainted.
        child_flags = [visit(c) for c in node.inputs]
        is_tainted = any(child_flags) or node_is_random(node)
        if is_tainted:
            tainted.add(node.name)
        return is_tainted

    visit(pipeline.root)
    return tainted
